"""Unit tests for the topology model and its graph algorithms."""

import random

import pytest

from repro.topology import (
    HostAttachment,
    Link,
    PortRef,
    Topology,
    TopologyError,
    figure1,
    line,
    ring,
)


def build_square():
    """A 4-cycle: two disjoint paths between opposite corners."""
    topo = Topology()
    for sw in "ABCD":
        topo.add_switch(sw, 8)
    topo.add_link("A", 1, "B", 1)
    topo.add_link("B", 2, "C", 1)
    topo.add_link("C", 2, "D", 1)
    topo.add_link("D", 2, "A", 2)
    topo.add_host("hA", "A", 5)
    topo.add_host("hC", "C", 5)
    return topo


class TestConstruction:
    def test_counts(self):
        topo = build_square()
        assert len(topo.switches) == 4
        assert len(topo.links) == 4
        assert topo.hosts == ["hA", "hC"]

    def test_duplicate_switch_rejected(self):
        topo = Topology()
        topo.add_switch("S", 4)
        with pytest.raises(TopologyError):
            topo.add_switch("S", 4)

    def test_port_range_enforced(self):
        topo = Topology()
        topo.add_switch("S", 4)
        with pytest.raises(TopologyError):
            topo.add_host("h", "S", 5)
        with pytest.raises(TopologyError):
            topo.add_host("h", "S", 0)

    def test_port_conflict_rejected(self):
        topo = Topology()
        topo.add_switch("S", 4)
        topo.add_switch("T", 4)
        topo.add_link("S", 1, "T", 1)
        with pytest.raises(TopologyError):
            topo.add_host("h", "S", 1)
        with pytest.raises(TopologyError):
            topo.add_link("S", 1, "T", 2)

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_switch("S", 4)
        with pytest.raises(TopologyError):
            topo.add_link("S", 1, "S", 2)
        with pytest.raises(TopologyError):
            Link(PortRef("S", 1), PortRef("S", 1))

    def test_unknown_nodes_raise(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_host("h", "nope", 1)
        with pytest.raises(TopologyError):
            topo.num_ports("nope")
        with pytest.raises(TopologyError):
            topo.host_port("ghost")

    def test_switch_needs_a_port(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_switch("S", 0)


class TestQueries:
    def test_peer_kinds(self):
        topo = build_square()
        peer = topo.peer("A", 1)
        assert isinstance(peer, PortRef) and peer == PortRef("B", 1)
        attach = topo.peer("A", 5)
        assert isinstance(attach, HostAttachment) and attach.host == "hA"
        assert topo.peer("A", 3) is None

    def test_neighbors_and_degree(self):
        topo = build_square()
        assert topo.neighbors("A") == ["B", "D"]
        assert topo.degree("A") == 2

    def test_hosts_on(self):
        topo = build_square()
        assert topo.hosts_on("A") == ["hA"]
        assert topo.hosts_on("B") == []

    def test_links_between_parallel(self):
        topo = Topology()
        topo.add_switch("S", 8)
        topo.add_switch("T", 8)
        topo.add_link("S", 1, "T", 1)
        topo.add_link("S", 2, "T", 2)
        assert len(topo.links_between("S", "T")) == 2
        # Parallel links collapse in the neighbor list.
        assert topo.neighbors("S") == ["T"]

    def test_link_other_end(self):
        topo = build_square()
        link = topo.links_between("A", "B")[0]
        assert link.other(link.a) == link.b
        assert link.other(link.b) == link.a
        with pytest.raises(TopologyError):
            link.other(PortRef("Z", 9))


class TestMutation:
    def test_remove_link_frees_ports(self):
        topo = build_square()
        topo.remove_link("A", 1, "B", 1)
        assert topo.peer("A", 1) is None
        assert topo.peer("B", 1) is None
        assert "B" not in topo.neighbors("A")
        # The freed ports are reusable.
        topo.add_link("A", 1, "B", 1)

    def test_remove_missing_link_raises(self):
        topo = build_square()
        with pytest.raises(TopologyError):
            topo.remove_link("A", 3, "B", 3)

    def test_remove_switch_cascades(self):
        topo = build_square()
        topo.remove_switch("A")
        assert not topo.has_switch("A")
        assert not topo.has_host("hA")
        assert topo.peer("B", 1) is None
        assert topo.peer("D", 2) is None

    def test_remove_host(self):
        topo = build_square()
        topo.remove_host("hA")
        assert not topo.has_host("hA")
        assert topo.peer("A", 5) is None
        assert topo.hosts_on("A") == []

    def test_copy_is_independent(self):
        topo = build_square()
        clone = topo.copy()
        assert clone.same_wiring(topo)
        clone.remove_link("A", 1, "B", 1)
        assert not clone.same_wiring(topo)
        assert topo.has_link("A", 1, "B", 1)


class TestConnectivity:
    def test_connected(self):
        assert build_square().is_connected()

    def test_disconnected(self):
        topo = build_square()
        topo.remove_link("A", 1, "B", 1)
        topo.remove_link("D", 2, "A", 2)
        assert not topo.is_connected()

    def test_empty_is_connected(self):
        assert Topology().is_connected()


class TestShortestPaths:
    def test_distances(self):
        topo = ring(6)
        dist = topo.switch_distances("R0")
        assert dist["R0"] == 0
        assert dist["R3"] == 3
        assert dist["R5"] == 1

    def test_shortest_path_endpoints(self):
        topo = build_square()
        path = topo.shortest_switch_path("A", "C")
        assert path is not None
        assert path[0] == "A" and path[-1] == "C" and len(path) == 3

    def test_shortest_path_same_node(self):
        topo = build_square()
        assert topo.shortest_switch_path("A", "A") == ["A"]

    def test_unreachable_returns_none(self):
        topo = build_square()
        topo.remove_link("A", 1, "B", 1)
        topo.remove_link("D", 2, "A", 2)
        assert topo.shortest_switch_path("A", "C") is None

    def test_randomized_tie_breaking_varies(self):
        topo = build_square()
        rng = random.Random(3)
        seen = set()
        for _ in range(50):
            path = topo.shortest_switch_path("A", "C", rng=rng)
            seen.add(tuple(path))
        # A square has exactly two shortest paths; both should appear.
        assert seen == {("A", "B", "C"), ("A", "D", "C")}

    def test_link_costs_steer_away(self):
        topo = build_square()
        link = topo.links_between("A", "B")[0]
        costs = {link.key(): 100.0}
        path = topo.shortest_switch_path("A", "C", link_costs=costs)
        assert path == ["A", "D", "C"]

    def test_k_shortest_distinct_and_ordered(self):
        topo = ring(6)
        paths = topo.k_shortest_switch_paths("R0", "R3", 4)
        assert len(paths) == 2  # clockwise and counterclockwise only
        assert len(paths[0]) <= len(paths[1])
        assert paths[0] != paths[1]
        for path in paths:
            assert path[0] == "R0" and path[-1] == "R3"
            assert len(set(path)) == len(path)  # loop-free

    def test_k_shortest_k1(self):
        topo = build_square()
        assert len(topo.k_shortest_switch_paths("A", "C", 1)) == 1

    def test_k_shortest_unreachable(self):
        topo = Topology()
        topo.add_switch("X", 2)
        topo.add_switch("Y", 2)
        assert topo.k_shortest_switch_paths("X", "Y", 3) == []


class TestEncoding:
    def test_encode_matches_ports(self):
        topo = figure1()
        tags = topo.encode_path("H4", ["S4", "S2", "S5"], "H5")
        # S4 -> S2 is S4 port 1; S2 -> S5 is S2 port 3; H5 sits on S5-5.
        assert tags == [1, 3, 5]

    def test_encode_rejects_wrong_endpoints(self):
        topo = figure1()
        with pytest.raises(TopologyError):
            topo.encode_path("H4", ["S2", "S5"], "H5")
        with pytest.raises(TopologyError):
            topo.encode_path("H4", ["S4", "S2"], "H5")

    def test_encode_rejects_nonadjacent(self):
        topo = figure1()
        with pytest.raises(TopologyError):
            topo.encode_path("H4", ["S4", "S3", "S5"], "H5")

    def test_decode_roundtrip(self):
        topo = figure1()
        tags = topo.encode_path("H4", ["S4", "S2", "S5"], "H5")
        assert topo.decode_tags("H4", tags) == ["S4", "S2", "S5"]

    def test_decode_rejects_dangling(self):
        topo = figure1()
        with pytest.raises(TopologyError):
            topo.decode_tags("H4", [1])  # ends on a switch
        with pytest.raises(TopologyError):
            topo.decode_tags("H4", [7])  # empty port

    def test_decode_rejects_extra_tags_after_host(self):
        topo = figure1()
        with pytest.raises(TopologyError):
            topo.decode_tags("H4", [1, 3, 5, 2])

    def test_line_end_to_end(self):
        topo = line(4)
        tags = topo.encode_path("hL0_0", ["L0", "L1", "L2", "L3"], "hL3_0")
        assert tags == [2, 2, 2, 3]
        assert topo.decode_tags("hL0_0", tags) == ["L0", "L1", "L2", "L3"]
