"""Workload generator tests: traffic matrices, HiBench DAGs, iperf."""

import random

import pytest

from repro.core.fabric import DumbNetFabric
from repro.flowsim import FlowNet, FluidSimulator, RebalancingKPathPolicy, SingleShortestPolicy
from repro.topology import leaf_spine, paper_testbed
from repro.workloads import (
    CbrStream,
    HIBENCH_TASKS,
    all_to_all_pairs,
    hibench_task,
    hotspot_pairs,
    measure_rtts,
    pareto_flow_bits,
    permutation_pairs,
    poisson_arrivals,
    run_task,
    stride_pairs,
)


class TestTrafficMatrices:
    def test_permutation_is_derangement(self):
        hosts = [f"h{i}" for i in range(20)]
        pairs = permutation_pairs(hosts, random.Random(3))
        assert len(pairs) == 20
        assert all(src != dst for src, dst in pairs)
        dsts = [d for _s, d in pairs]
        assert sorted(dsts) == sorted(hosts)  # a true permutation

    def test_all_to_all_count(self):
        hosts = ["a", "b", "c"]
        assert len(all_to_all_pairs(hosts)) == 6

    def test_stride(self):
        hosts = ["a", "b", "c", "d"]
        pairs = stride_pairs(hosts, 2)
        assert ("a", "c") in pairs and ("c", "a") in pairs
        assert all(s != d for s, d in stride_pairs(hosts, 4))  # stride 0 -> 1

    def test_hotspot(self):
        hosts = [f"h{i}" for i in range(10)]
        pairs = hotspot_pairs(hosts, num_hot=2, rng=random.Random(1))
        dsts = {d for _s, d in pairs}
        assert len(dsts) == 2
        assert all(s != d for s, d in pairs)

    def test_pareto_mean_approximate(self):
        rng = random.Random(5)
        samples = [pareto_flow_bits(rng, mean_bits=1e6) for _ in range(30000)]
        mean = sum(samples) / len(samples)
        assert 0.6e6 < mean < 1.8e6  # heavy tails make this noisy
        assert min(samples) > 0

    def test_pareto_heavy_tail(self):
        rng = random.Random(6)
        samples = sorted(pareto_flow_bits(rng, mean_bits=1e6) for _ in range(10000))
        top1pct = samples[int(0.99 * len(samples)):]
        assert sum(top1pct) > 0.1 * sum(samples)  # elephants carry bytes

    def test_pareto_validation(self):
        with pytest.raises(ValueError):
            pareto_flow_bits(random.Random(0), shape=1.0)

    def test_poisson_arrivals_sorted_and_bounded(self):
        rng = random.Random(2)
        times = list(poisson_arrivals(rng, rate_per_s=100, until_s=1.0))
        assert times == sorted(times)
        assert all(0 <= t < 1.0 for t in times)
        assert 50 < len(times) < 160

    def test_poisson_zero_rate(self):
        assert list(poisson_arrivals(random.Random(0), 0, 1.0)) == []


class TestHiBench:
    def test_all_five_tasks_build(self):
        hosts = [f"h{i}" for i in range(6)]
        for name in HIBENCH_TASKS:
            task = hibench_task(name, hosts, seed=1)
            assert task.stages
            assert task.total_bits > 0
            for stage in task.stages:
                for src, dst, bits in stage.flows:
                    assert src != dst and bits > 0

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            hibench_task("Sort", ["a", "b"])
        with pytest.raises(ValueError):
            hibench_task("Terasort", ["solo"])

    def test_terasort_is_heaviest(self):
        hosts = [f"h{i}" for i in range(6)]
        sizes = {
            name: hibench_task(name, hosts, seed=1).total_bits
            for name in HIBENCH_TASKS
        }
        assert sizes["Terasort"] == max(sizes.values())
        assert sizes["Wordcount"] == min(sizes.values())

    def test_deterministic_given_seed(self):
        hosts = ["a", "b", "c"]
        t1 = hibench_task("Join", hosts, seed=9)
        t2 = hibench_task("Join", hosts, seed=9)
        assert t1 == t2

    def test_run_task_stage_barrier(self):
        topo = leaf_spine(2, 2, 2, num_ports=16)
        net = FlowNet(topo, link_bps=1e9, host_bps=1e9)
        sim = FluidSimulator(net, SingleShortestPolicy())
        task = hibench_task("Aggregation", topo.hosts, seed=3, scale=0.01)
        duration = run_task(sim, task)
        assert duration > 0
        # Stage 2 flows must all start at/after stage 1 completion.
        stage1_tag = (task.name, task.stages[0].name)
        stage2_tag = (task.name, task.stages[1].name)
        stage1_done = sim.completion_time(stage1_tag)
        stage2_starts = [f.start_s for f in sim.flows if f.tag == stage2_tag]
        assert all(s >= stage1_done - 1e-9 for s in stage2_starts)

    def test_flowlet_policy_speeds_up_tasks(self):
        topo = leaf_spine(2, 3, 3, num_ports=16)
        durations = {}
        for label, policy in (
            ("single", SingleShortestPolicy()),
            ("balanced", RebalancingKPathPolicy(k=4)),
        ):
            net = FlowNet(topo, link_bps=1e9, host_bps=1e9)
            sim = FluidSimulator(net, policy)
            task = hibench_task("Terasort", topo.hosts, seed=2, scale=0.02)
            durations[label] = run_task(sim, task)
        assert durations["balanced"] < durations["single"]


class TestIperf:
    def test_cbr_stream_throughput(self):
        fabric = DumbNetFabric(
            leaf_spine(2, 2, 2, num_ports=16), controller_host="h0_0", seed=1
        )
        fabric.adopt_blueprint()
        fabric.warm_paths([("h0_1", "h1_1")])
        stream = CbrStream(
            fabric.agents["h0_1"], fabric.agents["h1_1"], rate_bps=50e6,
            packet_bytes=1450,
        )
        stream.start()
        fabric.run(until=fabric.now + 0.02)
        stream.stop()
        fabric.run_until_idle()
        bins = stream.throughput_bins(0.005, until=0.02)
        # Steady-state bins should carry ~50 Mbps.
        steady = [bps for _t, bps in bins[1:]]
        assert steady and all(35e6 < bps < 65e6 for bps in steady)

    def test_rtt_measurement_smoke(self):
        fabric = DumbNetFabric(paper_testbed(), controller_host="h0_0", seed=4)
        fabric.adopt_blueprint()
        pairs = [("h1_0", "h2_0"), ("h2_0", "h1_0"), ("h3_0", "h4_1")]
        samples = measure_rtts(fabric, pairs=pairs, packets_per_pair=5)
        assert len(samples) == 15
        assert all(s.rtt_s > 0 for s in samples)
        # First packet of each pair is a cold start (controller query).
        cold = [s for s in samples if s.cold_start]
        warm = [s for s in samples if not s.cold_start]
        assert len(cold) == 3
        assert max(s.rtt_s for s in cold) > min(s.rtt_s for s in warm)
