"""Robustness under frame loss: retries and dedup keep the control
plane alive on a lossy fabric."""

import random

import pytest

from repro.core.fabric import DumbNetFabric
from repro.netsim import Channel, Device, EventLoop
from repro.topology import leaf_spine


class Counter(Device):
    def __init__(self, name, loop):
        super().__init__(name, loop)
        self.count = 0

    def handle_packet(self, port, packet):
        self.count += 1


class Frame:
    size_bytes = 1000


class TestLossyChannel:
    def test_loss_rate_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            Channel(loop, loss_rate=1.0, rng=random.Random(0))
        with pytest.raises(ValueError):
            Channel(loop, loss_rate=0.5)  # rng required

    def test_approximate_loss_fraction(self):
        loop = EventLoop()
        channel = Channel(loop, loss_rate=0.3, rng=random.Random(7))
        a = Counter("a", loop)
        b = Counter("b", loop)
        a.attach(1, channel.ends[0])
        b.attach(1, channel.ends[1])
        for _ in range(1000):
            a.send(1, Frame())
        loop.run()
        assert 600 < b.count < 800
        assert channel.frames_dropped + channel.frames_delivered == 1000

    def test_zero_loss_default(self):
        loop = EventLoop()
        channel = Channel(loop)
        a = Counter("a", loop)
        b = Counter("b", loop)
        a.attach(1, channel.ends[0])
        b.attach(1, channel.ends[1])
        for _ in range(50):
            a.send(1, Frame())
        loop.run()
        assert b.count == 50


class TestControlPlaneUnderLoss:
    def test_path_query_retries_beat_loss(self):
        """Drop 40% of frames on the controller's host link: the
        agent's query retry loop must still land a PathReply."""
        topo = leaf_spine(2, 2, 2, num_ports=16)
        fabric = DumbNetFabric(topo, controller_host="h0_0", seed=23)
        fabric.adopt_blueprint()
        # Make the controller's access link lossy after bootstrap.
        channel = fabric.network.host_channel("h0_0")
        channel.loss_rate = 0.4
        channel.rng = random.Random(5)

        src = fabric.agents["h1_0"]
        delivered = False
        for attempt in range(6):
            src.send_app("h0_1", ("try", attempt))
            fabric.run_until_idle()
            got = [d[2] for d in fabric.agents["h0_1"].delivered]
            if any(isinstance(p, tuple) and p[0] == "try" for p in got):
                delivered = True
                break
        assert delivered, "retries never overcame the lossy control path"

    def test_gossip_dedup_tolerates_duplicate_floods(self):
        """Loss on some gossip routes plus dual-route redundancy means
        hosts see duplicates; the (switch, port, seq) dedup holds."""
        topo = leaf_spine(2, 3, 2, num_ports=16)
        fabric = DumbNetFabric(topo, controller_host="h0_0", seed=29)
        fabric.adopt_blueprint()
        fabric.fail_link("leaf1", 1, "spine0", 2)
        fabric.run_until_idle()
        for agent in fabric.agents.values():
            # Both endpoints alarm once each: at most 2 distinct news
            # events acted upon, regardless of flood duplication.
            assert agent.news_received <= 2
