"""CLI tests: every subcommand end to end through temp files."""

import json

import pytest

from repro.cli import main
from repro.topology import dumps, paper_testbed


@pytest.fixture
def blueprint(tmp_path):
    path = tmp_path / "testbed.json"
    path.write_text(dumps(paper_testbed()))
    return str(path)


class TestGenerate:
    def test_generate_to_file(self, tmp_path):
        out = tmp_path / "ft.json"
        assert main(["generate", "fattree", "--k", "4", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert len(data["switches"]) == 20

    def test_generate_stdout(self, capsys):
        assert main(["generate", "figure1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "S3" in data["switches"]

    def test_generate_leafspine(self, capsys):
        assert main(
            ["generate", "leafspine", "--spines", "2", "--leaves", "3",
             "--hosts", "2", "--ports", "16"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["hosts"]) == 6

    def test_generate_cube_and_jellyfish(self, capsys):
        assert main(["generate", "cube", "--side", "2", "--dims", "2",
                     "--ports", "8"]) == 0
        assert main(["generate", "jellyfish", "--switches", "8",
                     "--degree", "3"]) == 0

    def test_generate_testbed(self, capsys):
        assert main(["generate", "testbed"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["hosts"]) == 27


class TestInfo:
    def test_info(self, blueprint, capsys):
        assert main(["info", blueprint]) == 0
        out = capsys.readouterr().out
        assert "switches=7" in out
        assert "diameter:  2" in out


class TestValidate:
    def test_valid_blueprint(self, blueprint, capsys):
        assert main(["validate", blueprint]) == 0

    def test_tag_budget_violation(self, tmp_path, capsys):
        from repro.topology import line

        path = tmp_path / "long.json"
        path.write_text(dumps(line(40)))
        assert main(["validate", str(path), "--max-tags", "8"]) == 1
        assert "ERROR" in capsys.readouterr().out


class TestDiscover:
    def test_full_discovery(self, blueprint, capsys):
        assert main(["discover", blueprint]) == 0
        out = capsys.readouterr().out
        assert "7 switches" in out
        assert "matches blueprint: True" in out

    def test_explicit_origin(self, blueprint, capsys):
        assert main(["discover", blueprint, "--origin", "h3_1"]) == 0

    def test_unknown_origin(self, blueprint, capsys):
        assert main(["discover", blueprint, "--origin", "ghost"]) == 1

    def test_verification_mode(self, blueprint, capsys):
        assert main(["discover", blueprint, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verification bootstrap" in out


class TestFail:
    def test_link_failure_timeline(self, blueprint, capsys):
        assert main(["fail", blueprint, "leaf2:1:spine0:3"]) == 0
        out = capsys.readouterr().out
        assert "stage 1" in out and "stage 2" in out
        assert "controller view updated: True" in out

    def test_unknown_link(self, blueprint, capsys):
        assert main(["fail", blueprint, "leaf2:9:spine0:9"]) == 1

    def test_malformed_link(self, blueprint):
        assert main(["fail", blueprint, "nonsense"]) == 2
