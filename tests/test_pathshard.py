"""Control-plane scale-out: per-pod path shards + the global tier.

The contract under test (see DESIGN.md "Control-plane scale-out"):
intra-pod answers from a pod shard are byte-identical to the single
global PathService's builds; cross-pod routes stitched from per-pod
SSSP segments are valid and exactly shortest; shards fail over
independently (a planned step-down never shrinks the quorum); and the
live fabric wiring (``Controller.enable_sharding``) leaves every
host-visible behaviour unchanged.
"""

import pytest

from repro.core.controller import Controller
from repro.core.host_agent import HostAgent
from repro.core.messages import TopologyChange
from repro.core.pathservice import PathService
from repro.core.pathshard import (
    PodMap,
    ShardedPathService,
    ShardUnavailable,
    fat_tree_pod_of,
)
from repro.netsim import Network
from repro.netsim.trace import Tracer
from repro.topology.fattree import fat_tree

S, EPS = 2, 1
SEED = 5


def intra_pod_pairs(pod_map):
    for pod in pod_map.pods:
        members = sorted(pod_map.members(pod))
        for src in members:
            for dst in members:
                if src != dst:
                    yield pod, src, dst


class TestPodMap:
    def test_fat_tree_classifier(self):
        assert fat_tree_pod_of("agg2_1") == "2"
        assert fat_tree_pod_of("edge0_0") == "0"
        assert fat_tree_pod_of("core3") is None
        assert fat_tree_pod_of("spine0") is None

    def test_subview_is_pod_plus_core(self):
        view = fat_tree(4)
        pod_map = PodMap.from_view(view)
        assert pod_map.pods == ["0", "1", "2", "3"]
        sub = pod_map.subview(view, "1")
        # Pod 1's own switches and every core switch, nothing foreign.
        assert set(sub.switches) == set(pod_map.members("1")) | set(
            pod_map.core_switches()
        )
        assert all(not sw.startswith(("agg2", "edge0")) for sw in sub.switches)
        # Only pod 1's hosts ride along.
        assert all(h.startswith("h1_") for h in sub.hosts)
        # Every subview link exists identically in the full view.
        for link in sub.links:
            assert view.has_link(
                link.a.switch, link.a.port, link.b.switch, link.b.port
            )

    def test_boundary_links_are_agg_core(self):
        view = fat_tree(4)
        pod_map = PodMap.from_view(view)
        boundary = pod_map.boundary_links(view)
        # k=4: 4 aggs x 2 core uplinks... k/2 per agg => 16 total.
        assert len(boundary) == 16
        for sw_a, _pa, sw_b, _pb in boundary:
            pods = {pod_map.pod_of(sw_a), pod_map.pod_of(sw_b)}
            assert None in pods and len(pods) == 2


class TestByteIdentity:
    def test_every_intra_pod_answer_matches_single_service(self):
        view = fat_tree(4)
        flat = PathService(capacity=512, seed=SEED)
        svc = ShardedPathService(view, seed=SEED, capacity=512)
        for _pod, src, dst in intra_pod_pairs(svc.pod_map):
            got = svc.path_graph(src, dst, S, EPS)
            want = flat.build_fresh(view, src, dst, S, EPS)
            assert got == want, (src, dst)
        # The router never spilled an intra-pod query to the global tier.
        assert svc.global_queries == 0

    def test_cross_pod_goes_to_global_tier(self):
        view = fat_tree(4)
        svc = ShardedPathService(view, seed=SEED)
        flat = PathService(capacity=512, seed=SEED)
        got = svc.path_graph("edge0_0", "edge2_1", S, EPS)
        assert got == flat.build_fresh(view, "edge0_0", "edge2_1", S, EPS)
        assert svc.global_queries == 1

    def test_pod_hint_counters(self):
        view = fat_tree(4)
        svc = ShardedPathService(view, seed=SEED)
        svc.path_graph("edge1_0", "agg1_1", S, EPS, pod_hint="1")
        svc.path_graph("edge1_0", "edge1_1", S, EPS, pod_hint="3")
        assert svc.hint_hits == 1
        assert svc.hint_misses == 1


class TestCrossPodStitching:
    def test_stitched_routes_are_valid_and_shortest(self):
        view = fat_tree(4)
        svc = ShardedPathService(view, seed=SEED)
        flat = PathService(capacity=512, seed=SEED)
        samples = [
            ("edge0_0", "edge1_1"),
            ("edge2_0", "agg3_1"),
            ("agg0_1", "edge3_0"),
        ]
        for src, dst in samples:
            route = svc.cross_pod_route(src, dst)
            assert route is not None and route[0] == src and route[-1] == dst
            # Every hop is a live link in the FULL view.
            for a, b in zip(route, route[1:]):
                assert view.links_between(a, b), (a, b)
            assert len(set(route)) == len(route)
            # Exactly as short as the global answer.
            want = flat.shortest_path(view, src, dst)
            assert len(route) == len(want), (src, dst)
        assert svc.stitched_routes == len(samples)
        assert svc.stitch_fallbacks == 0

    def test_stitch_cache(self):
        svc = ShardedPathService(fat_tree(4), seed=SEED)
        first = svc.cross_pod_route("edge0_0", "edge1_0")
        again = svc.cross_pod_route("edge0_0", "edge1_0")
        assert first == again
        assert svc.stitched_routes == 1  # second hit came from the cache

    def test_cross_pod_tags_reach_hosts(self):
        view = fat_tree(4, hosts_per_edge=1)
        svc = ShardedPathService(view, seed=SEED)
        tags = svc.cross_pod_tags("h0_0_0", "h3_1_0")
        assert tags is not None and len(tags) > 0


class TestShardFailover:
    def test_planned_then_crash_on_same_shard(self):
        svc = ShardedPathService(fat_tree(4), seed=SEED, n_replicas=3)
        shard = svc.shards["2"]
        first = shard.primary
        stepped = shard.failover()
        assert stepped is not None and stepped != first
        # The step-down kept all three quorum nodes alive ...
        assert shard.alive_replicas() == 3
        # ... so a real crash right after still finds a majority.
        crashed = shard.fail_primary()
        assert crashed is not None
        assert shard.alive_replicas() == 2
        # And the shard still answers, byte-identically.
        flat = PathService(capacity=512, seed=SEED)
        got = shard.path_graph("edge2_0", "edge2_1", S, EPS)
        assert got == flat.build_fresh(svc.view, "edge2_0", "edge2_1", S, EPS)

    def test_failover_is_per_shard(self):
        svc = ShardedPathService(fat_tree(4), seed=SEED)
        leaders = {pod: svc.shards[pod].primary for pod in svc.shards}
        svc.shards["0"].fail_primary()
        for pod in ("1", "2", "3"):
            assert svc.shards[pod].primary == leaders[pod]
            assert svc.shards[pod].alive_replicas() == 3

    def test_dead_shard_falls_back_to_global(self):
        svc = ShardedPathService(fat_tree(4), seed=SEED, n_replicas=3)
        shard = svc.shards["1"]
        # Kill the whole quorum: the shard can no longer serve.
        for node in shard.store.cluster.nodes.values():
            node.crash()
        shard.store.cluster.leader = None
        with pytest.raises(ShardUnavailable):
            _ = shard.view
        # The router detects it and answers from the global tier.
        graph = svc.path_graph("edge1_0", "edge1_1", S, EPS)
        assert graph is not None
        assert svc.global_queries == 1


class TestTopologyChanges:
    def test_intra_pod_link_down_reaches_all_replicas(self):
        view = fat_tree(4)
        svc = ShardedPathService(view, seed=SEED)
        link = view.links_between("edge1_0", "agg1_0")[0]
        args = (link.a.switch, link.a.port, link.b.switch, link.b.port)
        view.remove_link(*args)  # the controller mutates its view first
        svc.note_topology_change("link-down", args)
        shard = svc.shards["1"]
        for name in shard.replica_names:
            assert not shard.store.view_of(name).has_link(*args)
        # Other pods' subviews never contained it: untouched, no drops.
        assert svc.shards["0"].changes_applied == 0
        assert sum(
            s.store.total_drops() for s in svc.shards.values()
        ) == 0

    def test_pod_core_boundary_link_down(self):
        view = fat_tree(4)
        svc = ShardedPathService(view, seed=SEED)
        link = view.links_between("agg2_0", "core0")[0]
        args = (link.a.switch, link.a.port, link.b.switch, link.b.port)
        view.remove_link(*args)
        svc.note_topology_change("link-down", args)
        assert not svc.shards["2"].view.has_link(*args)
        assert svc.shards["2"].store.total_drops() == 0

    def test_host_join_lands_on_its_pod_shard(self):
        view = fat_tree(4, hosts_per_edge=1)
        svc = ShardedPathService(view, seed=SEED)
        # A free port on pod 3's edge switch (hosts_per_edge=1 leaves
        # spare host-side ports).
        port = next(
            p
            for p in range(1, view.num_ports("edge3_0") + 1)
            if view.peer("edge3_0", p) is None
        )
        view.add_host("newvm", "edge3_0", port)
        svc.note_topology_change("host-up", ("newvm", "edge3_0", port))
        shard = svc.shards["3"]
        assert shard.joins == 1
        for name in shard.replica_names:
            assert shard.store.view_of(name).has_host("newvm")
        assert not svc.shards["0"].view.has_host("newvm")


def build_sharded_fabric(sharded=True):
    """A live fat-tree(4) fabric whose first host is the controller."""
    topo = fat_tree(4, hosts_per_edge=1)
    agents = {}
    tracer = Tracer()

    from repro.core.switch import DumbSwitch

    def make_switch(name, ports, network):
        return DumbSwitch(name, ports, network.loop, tracer=tracer)

    def make_host(name, network):
        cls = Controller if name == "h0_0_0" else HostAgent
        agent = cls(name, network.loop, tracer=tracer)
        agents[name] = agent
        return agent

    network = Network(topo, make_switch, make_host, tracer=tracer)
    controller = agents["h0_0_0"]
    controller.adopt_view(topo.copy())
    if sharded:
        controller.enable_sharding()
    controller.announce_all()
    network.run_until_idle()
    return network, agents, controller


class TestLiveFabric:
    def test_announce_carries_pod(self):
        _network, agents, _controller = build_sharded_fabric()
        assert agents["h2_1_0"].pod == "2"
        assert agents["h0_1_0"].pod == "0"

    def test_intra_pod_query_served_by_shard(self):
        network, agents, controller = build_sharded_fabric()
        svc = controller.shard_service
        agents["h1_0_0"].send_app("h1_1_0", "intra-pod")
        network.run_until_idle()
        assert "intra-pod" in [d[2] for d in agents["h1_1_0"].delivered]
        assert svc.shards["1"].queries >= 1
        assert svc.hint_hits >= 1

    def test_cross_pod_query_served_by_global_tier(self):
        network, agents, controller = build_sharded_fabric()
        svc = controller.shard_service
        agents["h2_0_0"].send_app("h3_0_0", "cross-pod")
        network.run_until_idle()
        assert "cross-pod" in [d[2] for d in agents["h3_0_0"].delivered]
        assert svc.global_queries >= 1

    def test_path_replies_identical_with_and_without_sharding(self):
        """The scale-out must be invisible on the wire: the exact same
        tag routes land in the hosts' path tables either way."""
        flows = [("h1_0_0", "h1_1_0"), ("h0_1_0", "h3_1_0")]
        tables = []
        for sharded in (True, False):
            network, agents, _controller = build_sharded_fabric(sharded)
            for src, dst in flows:
                agents[src].send_app(dst, f"probe-{dst}")
            network.run_until_idle()
            tables.append(
                {
                    (src, dst): (
                        [p.tags for p in agents[src].path_table.entry(dst).primaries],
                        agents[src].path_table.entry(dst).backup.tags
                        if agents[src].path_table.entry(dst).backup
                        else None,
                    )
                    for src, dst in flows
                }
            )
        assert tables[0] == tables[1]

    def test_link_down_propagates_to_shard_replicas(self):
        network, agents, controller = build_sharded_fabric()
        link = controller.view.links_between("edge2_0", "agg2_1")[0]
        args = (link.a.switch, link.a.port, link.b.switch, link.b.port)
        network.fail_link(*args)
        network.run_until_idle()
        shard = controller.shard_service.shards["2"]
        for name in shard.replica_names:
            assert not shard.store.view_of(name).has_link(*args)
        assert shard.store.total_drops() == 0

    def test_report_counts_queries(self):
        network, agents, controller = build_sharded_fabric()
        agents["h1_0_0"].send_app("h1_1_0", "x")
        network.run_until_idle()
        report = controller.shard_service.report()
        row = report["shards"]["1"]
        assert row["queries"] >= 1
        assert row["alive_replicas"] == 3
        assert 0.0 <= row["hit_ratio"] <= 1.0
