"""Tests for the discrete-event emulator core."""

import pytest

from repro.netsim import (
    Channel,
    Device,
    EventLoop,
    LinkSpec,
    Network,
    SimulationError,
    Tracer,
)
from repro.topology import line


class TestEventLoop:
    def test_ordering_by_time(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, order.append, "b")
        loop.schedule(1.0, order.append, "a")
        loop.schedule(3.0, order.append, "c")
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_fifo_at_equal_times(self):
        loop = EventLoop()
        order = []
        for i in range(5):
            loop.schedule(1.0, order.append, i)
        loop.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-0.1, lambda: None)

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, fired.append, 1)
        loop.schedule(2.0, fired.append, 2)
        handle.cancel()
        loop.run()
        assert fired == [2]

    def test_run_until_advances_clock(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, fired.append, 1)
        executed = loop.run(until=2.0)
        assert executed == 0 and loop.now == 2.0 and fired == []
        loop.run()
        assert fired == [1] and loop.now == 5.0

    def test_nested_scheduling(self):
        loop = EventLoop()
        times = []

        def tick(n):
            times.append(loop.now)
            if n > 0:
                loop.schedule(1.0, tick, n - 1)

        loop.schedule(0.0, tick, 3)
        loop.run()
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_runaway_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            loop.run_until_idle(max_events=1000)

    def test_max_events_pauses_and_resumes(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(float(i), fired.append, i)
        loop.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        loop.run()
        assert fired == list(range(10))


class Recorder(Device):
    """Test device: logs everything it hears."""

    def __init__(self, name, loop, proc_delay=0.0):
        super().__init__(name, loop, proc_delay=proc_delay)
        self.packets = []
        self.port_events = []

    def handle_packet(self, port, packet):
        self.packets.append((self.loop.now, port, packet))

    def handle_port_state(self, port, up):
        self.port_events.append((self.loop.now, port, up))


class FakeFrame:
    def __init__(self, size_bytes=1000):
        self.size_bytes = size_bytes


def wire_pair(loop, bandwidth=None, latency=1e-3, **kw):
    a = Recorder("a", loop)
    b = Recorder("b", loop)
    channel = Channel(loop, bandwidth_bps=bandwidth, latency_s=latency, **kw)
    a.attach(1, channel.ends[0])
    b.attach(1, channel.ends[1])
    return a, b, channel


class TestChannel:
    def test_latency_only_delivery(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop, latency=2e-3)
        a.send(1, FakeFrame())
        loop.run()
        assert len(b.packets) == 1
        assert b.packets[0][0] == pytest.approx(2e-3)

    def test_serialization_delay(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop, bandwidth=8e6, latency=0.0)  # 1 MB/s
        a.send(1, FakeFrame(size_bytes=1000))  # 1 ms on the wire
        loop.run()
        assert b.packets[0][0] == pytest.approx(1e-3)

    def test_back_to_back_frames_queue(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop, bandwidth=8e6, latency=0.0)
        a.send(1, FakeFrame(1000))
        a.send(1, FakeFrame(1000))
        loop.run()
        times = [t for t, _p, _f in b.packets]
        assert times == [pytest.approx(1e-3), pytest.approx(2e-3)]

    def test_down_channel_drops_and_notifies(self):
        loop = EventLoop()
        a, b, ch = wire_pair(loop)
        ch.fail()
        assert a.send(1, FakeFrame()) is False
        loop.run()
        assert b.packets == []
        assert a.port_events and a.port_events[0][2] is False
        assert b.port_events and b.port_events[0][2] is False

    def test_in_flight_frames_die_with_channel(self):
        loop = EventLoop()
        a, b, ch = wire_pair(loop, latency=5e-3)
        a.send(1, FakeFrame())
        loop.schedule(1e-3, ch.fail)
        loop.run()
        assert b.packets == []

    def test_restore_notifies_up(self):
        loop = EventLoop()
        a, b, ch = wire_pair(loop)
        ch.fail()
        loop.run()
        ch.restore()
        loop.run()
        assert a.port_events[-1][2] is True

    def test_set_same_state_is_noop(self):
        loop = EventLoop()
        a, _b, ch = wire_pair(loop)
        ch.restore()  # already up
        loop.run()
        assert a.port_events == []


class TestDevice:
    def test_processing_delay_serializes(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop, latency=0.0)
        b.proc_delay = 1e-3
        a.send(1, FakeFrame())
        a.send(1, FakeFrame())
        loop.run()
        times = [t for t, _p, _f in b.packets]
        assert times == [pytest.approx(1e-3), pytest.approx(2e-3)]

    def test_power_off_drops_everything(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop)
        b.power_off()
        a.send(1, FakeFrame())
        loop.run()
        assert b.packets == []

    def test_power_off_downs_links(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop)
        b.power_off()
        loop.run()
        assert a.port_events and a.port_events[0][2] is False

    def test_double_attach_rejected(self):
        loop = EventLoop()
        a, _b, ch = wire_pair(loop)
        with pytest.raises(ValueError):
            a.attach(1, ch.ends[0])

    def test_send_on_missing_port(self):
        loop = EventLoop()
        dev = Recorder("solo", loop)
        assert dev.send(3, FakeFrame()) is False


class TestNetworkBuilder:
    def _factories(self):
        def sw(name, ports, network):
            return Recorder(name, network.loop)

        def host(name, network):
            return Recorder(name, network.loop)

        return sw, host

    def test_builds_all_devices(self):
        sw, host = self._factories()
        net = Network(line(3, hosts_per_switch=1), sw, host)
        assert set(net.switches) == {"L0", "L1", "L2"}
        assert len(net.hosts) == 3

    def test_fail_and_restore_link(self):
        sw, host = self._factories()
        net = Network(line(3), sw, host)
        net.fail_link("L0", 2, "L1", 1)
        net.run_until_idle()
        assert net.switches["L0"].port_events[-1][2] is False
        net.restore_link("L0", 2, "L1", 1)
        net.run_until_idle()
        assert net.switches["L0"].port_events[-1][2] is True

    def test_fail_unknown_link_raises(self):
        sw, host = self._factories()
        net = Network(line(3), sw, host)
        with pytest.raises(Exception):
            net.fail_link("L0", 5, "L1", 5)

    def test_fail_random_link_returns_it(self):
        sw, host = self._factories()
        net = Network(line(3), sw, host)
        link = net.fail_random_link()
        assert not net.link_channel(
            link.a.switch, link.a.port, link.b.switch, link.b.port
        ).up

    def test_device_lookup(self):
        sw, host = self._factories()
        net = Network(line(2), sw, host)
        assert net.device("L0").name == "L0"
        assert net.device("hL0_0").name == "hL0_0"
        with pytest.raises(KeyError):
            net.device("ghost")


class TestTracer:
    def test_record_and_query(self):
        tracer = Tracer()
        tracer.record(1.0, "x", "n1", "d1")
        tracer.record(2.0, "x", "n1", "d2")
        tracer.record(3.0, "y", "n2")
        assert len(tracer) == 3
        assert tracer.times("x") == [1.0, 2.0]
        assert tracer.first("x").detail == "d1"
        assert tracer.first("x", node="n2") is None
        assert tracer.first_time_per_node("x") == {"n1": 1.0}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "x", "n")
        assert len(tracer) == 0
