"""Tests for the discrete-event emulator core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    Channel,
    Device,
    EventLoop,
    LinkSpec,
    Network,
    SimulationError,
    Tracer,
)
from repro.topology import line


class TestEventLoop:
    def test_ordering_by_time(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, order.append, "b")
        loop.schedule(1.0, order.append, "a")
        loop.schedule(3.0, order.append, "c")
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_fifo_at_equal_times(self):
        loop = EventLoop()
        order = []
        for i in range(5):
            loop.schedule(1.0, order.append, i)
        loop.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-0.1, lambda: None)

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, fired.append, 1)
        loop.schedule(2.0, fired.append, 2)
        handle.cancel()
        loop.run()
        assert fired == [2]

    def test_run_until_advances_clock(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, fired.append, 1)
        executed = loop.run(until=2.0)
        assert executed == 0 and loop.now == 2.0 and fired == []
        loop.run()
        assert fired == [1] and loop.now == 5.0

    def test_nested_scheduling(self):
        loop = EventLoop()
        times = []

        def tick(n):
            times.append(loop.now)
            if n > 0:
                loop.schedule(1.0, tick, n - 1)

        loop.schedule(0.0, tick, 3)
        loop.run()
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_runaway_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            loop.run_until_idle(max_events=1000)

    def test_max_events_pauses_and_resumes(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(float(i), fired.append, i)
        loop.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        loop.run()
        assert fired == list(range(10))

    def test_schedule_at_exact_deadline_no_float_drift(self):
        """Regression: schedule_at used to delegate to schedule(time -
        now), storing ``now + (time - now)`` -- which at now=0.3,
        time=0.9 is one ulp above 0.9, so a schedule_at aimed at the
        same instant as a call_at fired *after* it despite being
        scheduled first (and at now=0.2 one ulp *below*, early enough
        to straddle a partition's lookahead window)."""
        loop = EventLoop()
        order = []
        loop.schedule(0.3, lambda: None)
        loop.run()  # advance the clock to exactly 0.3
        assert loop.now == 0.3
        handle = loop.schedule_at(0.9, order.append, "schedule_at")
        loop.call_at(0.9, order.append, "call_at")
        assert handle.time == 0.9  # exact, not 0.3 + (0.9 - 0.3)
        loop.run()
        assert loop.now == 0.9
        # Equal deadlines fire in scheduling order.
        assert order == ["schedule_at", "call_at"]

    def test_schedule_at_past_time_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(0.5, lambda: None)
        # At exactly now is still legal (zero-delay event).
        fired = []
        loop.schedule_at(1.0, fired.append, 1)
        loop.run()
        assert fired == [1]

    def test_next_event_time_skips_cancelled(self):
        loop = EventLoop()
        early = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.next_event_time() == 1.0
        early.cancel()
        assert loop.next_event_time() == 2.0
        loop.run()
        assert loop.next_event_time() is None


class Recorder(Device):
    """Test device: logs everything it hears."""

    def __init__(self, name, loop, proc_delay=0.0):
        super().__init__(name, loop, proc_delay=proc_delay)
        self.packets = []
        self.port_events = []

    def handle_packet(self, port, packet):
        self.packets.append((self.loop.now, port, packet))

    def handle_port_state(self, port, up):
        self.port_events.append((self.loop.now, port, up))


class FakeFrame:
    def __init__(self, size_bytes=1000):
        self.size_bytes = size_bytes


def wire_pair(loop, bandwidth=None, latency=1e-3, **kw):
    a = Recorder("a", loop)
    b = Recorder("b", loop)
    channel = Channel(loop, bandwidth_bps=bandwidth, latency_s=latency, **kw)
    a.attach(1, channel.ends[0])
    b.attach(1, channel.ends[1])
    return a, b, channel


class TestChannel:
    def test_latency_only_delivery(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop, latency=2e-3)
        a.send(1, FakeFrame())
        loop.run()
        assert len(b.packets) == 1
        assert b.packets[0][0] == pytest.approx(2e-3)

    def test_serialization_delay(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop, bandwidth=8e6, latency=0.0)  # 1 MB/s
        a.send(1, FakeFrame(size_bytes=1000))  # 1 ms on the wire
        loop.run()
        assert b.packets[0][0] == pytest.approx(1e-3)

    def test_back_to_back_frames_queue(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop, bandwidth=8e6, latency=0.0)
        a.send(1, FakeFrame(1000))
        a.send(1, FakeFrame(1000))
        loop.run()
        times = [t for t, _p, _f in b.packets]
        assert times == [pytest.approx(1e-3), pytest.approx(2e-3)]

    def test_down_channel_drops_and_notifies(self):
        loop = EventLoop()
        a, b, ch = wire_pair(loop)
        ch.fail()
        assert a.send(1, FakeFrame()) is False
        loop.run()
        assert b.packets == []
        assert a.port_events and a.port_events[0][2] is False
        assert b.port_events and b.port_events[0][2] is False

    def test_in_flight_frames_die_with_channel(self):
        loop = EventLoop()
        a, b, ch = wire_pair(loop, latency=5e-3)
        a.send(1, FakeFrame())
        loop.schedule(1e-3, ch.fail)
        loop.run()
        assert b.packets == []

    def test_restore_notifies_up(self):
        loop = EventLoop()
        a, b, ch = wire_pair(loop)
        ch.fail()
        loop.run()
        ch.restore()
        loop.run()
        assert a.port_events[-1][2] is True

    def test_set_same_state_is_noop(self):
        loop = EventLoop()
        a, _b, ch = wire_pair(loop)
        ch.restore()  # already up
        loop.run()
        assert a.port_events == []


class TestDevice:
    def test_processing_delay_serializes(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop, latency=0.0)
        b.proc_delay = 1e-3
        a.send(1, FakeFrame())
        a.send(1, FakeFrame())
        loop.run()
        times = [t for t, _p, _f in b.packets]
        assert times == [pytest.approx(1e-3), pytest.approx(2e-3)]

    def test_power_off_drops_everything(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop)
        b.power_off()
        a.send(1, FakeFrame())
        loop.run()
        assert b.packets == []

    def test_power_off_downs_links(self):
        loop = EventLoop()
        a, b, _ch = wire_pair(loop)
        b.power_off()
        loop.run()
        assert a.port_events and a.port_events[0][2] is False

    def test_double_attach_rejected(self):
        loop = EventLoop()
        a, _b, ch = wire_pair(loop)
        with pytest.raises(ValueError):
            a.attach(1, ch.ends[0])

    def test_send_on_missing_port(self):
        loop = EventLoop()
        dev = Recorder("solo", loop)
        assert dev.send(3, FakeFrame()) is False


class TestNetworkBuilder:
    def _factories(self):
        def sw(name, ports, network):
            return Recorder(name, network.loop)

        def host(name, network):
            return Recorder(name, network.loop)

        return sw, host

    def test_builds_all_devices(self):
        sw, host = self._factories()
        net = Network(line(3, hosts_per_switch=1), sw, host)
        assert set(net.switches) == {"L0", "L1", "L2"}
        assert len(net.hosts) == 3

    def test_fail_and_restore_link(self):
        sw, host = self._factories()
        net = Network(line(3), sw, host)
        net.fail_link("L0", 2, "L1", 1)
        net.run_until_idle()
        assert net.switches["L0"].port_events[-1][2] is False
        net.restore_link("L0", 2, "L1", 1)
        net.run_until_idle()
        assert net.switches["L0"].port_events[-1][2] is True

    def test_fail_unknown_link_raises(self):
        sw, host = self._factories()
        net = Network(line(3), sw, host)
        with pytest.raises(Exception):
            net.fail_link("L0", 5, "L1", 5)

    def test_fail_random_link_returns_it(self):
        sw, host = self._factories()
        net = Network(line(3), sw, host)
        link = net.fail_random_link()
        assert not net.link_channel(
            link.a.switch, link.a.port, link.b.switch, link.b.port
        ).up

    def test_device_lookup(self):
        sw, host = self._factories()
        net = Network(line(2), sw, host)
        assert net.device("L0").name == "L0"
        assert net.device("hL0_0").name == "hL0_0"
        with pytest.raises(KeyError):
            net.device("ghost")


class TestTracer:
    def test_record_and_query(self):
        tracer = Tracer()
        tracer.record(1.0, "x", "n1", "d1")
        tracer.record(2.0, "x", "n1", "d2")
        tracer.record(3.0, "y", "n2")
        assert len(tracer) == 3
        assert tracer.times("x") == [1.0, 2.0]
        assert tracer.first("x").detail == "d1"
        assert tracer.first("x", node="n2") is None
        assert tracer.first_time_per_node("x") == {"n1": 1.0}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "x", "n")
        assert len(tracer) == 0


class TestQuiesceGuard:
    def test_raises_when_live_events_remain(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        with pytest.raises(SimulationError, match="did not quiesce"):
            loop.run_until_idle(max_events=1)

    def test_raises_even_when_cancelled_events_mask_live_ones(self):
        # The old guard scanned the heap for non-cancelled handles and
        # could be fooled; any *live* event left after max_events must
        # raise, regardless of dead entries around it.
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        dead = loop.schedule(2.0, lambda: None)
        dead.cancel()
        loop.schedule(3.0, lambda: None)  # live, will not run
        with pytest.raises(SimulationError, match="1 live"):
            loop.run_until_idle(max_events=1)

    def test_leftover_cancelled_entries_are_not_a_failure(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(5.0, lambda: None).cancel()
        loop.run_until_idle(max_events=1)  # dead weight is not work
        assert loop.pending == 0

    def test_fire_and_forget_counts_as_live(self):
        loop = EventLoop()
        loop.call_after(1.0, lambda: None)
        loop.call_after(2.0, lambda: None)
        with pytest.raises(SimulationError):
            loop.run_until_idle(max_events=1)


class TestLazyDeletion:
    def test_pending_is_maintained_not_scanned(self):
        loop = EventLoop()
        handles = [loop.schedule(1.0, lambda: None) for _ in range(10)]
        loop.call_after(1.0, lambda: None)
        assert loop.pending == 11
        for handle in handles[:4]:
            handle.cancel()
        assert loop.pending == 7
        handles[0].cancel()  # double-cancel is a no-op
        assert loop.pending == 7
        loop.run()
        assert loop.pending == 0

    def test_cancel_heavy_heap_stays_bounded(self):
        # Regression: before lazy deletion grew a compaction sweep,
        # arm/disarm churn (protocol retry timers) left every cancelled
        # entry in the heap until its deadline passed.
        from repro.netsim.events import COMPACT_MIN_DEAD

        loop = EventLoop()
        peak = 0
        cycles = 5000

        def noop():
            raise AssertionError("cancelled timer fired")

        def tick(n):
            nonlocal peak
            loop.schedule(1000.0, noop).cancel()
            peak = max(peak, len(loop._heap))
            if n > 0:
                loop.call_after(1e-6, tick, n - 1)

        loop.call_after(0.0, tick, cycles)
        loop.run()
        # One live chain timer plus at most ~2x the compaction floor of
        # dead entries between sweeps.
        assert peak <= 4 * COMPACT_MIN_DEAD
        assert loop.pending == 0

    def test_compaction_preserves_order(self):
        loop = EventLoop()
        fired = []
        keep = [loop.schedule(float(i), fired.append, i) for i in range(1, 6)]
        doomed = [loop.schedule(0.5, fired.append, -1) for _ in range(200)]
        for handle in doomed:
            handle.cancel()  # crosses the compaction threshold mid-loop
        assert loop.dead_entries < 200  # a sweep actually happened
        loop.run()
        assert fired == [1, 2, 3, 4, 5]
        assert all(h.cancelled for h in doomed)
        assert keep[0].cancelled  # fired handles read as spent


class TestChannelFifo:
    def test_jitter_cannot_reorder_frames(self):
        import random as _random

        loop = EventLoop()
        a, b, _ch = wire_pair(
            loop, latency=1e-3, jitter_s=1e-3, rng=_random.Random(3)
        )
        frames = [FakeFrame() for _ in range(50)]
        for frame in frames:
            a.send(1, frame)
        loop.run()
        assert [f for _t, _p, f in b.packets] == frames
        times = [t for t, _p, _f in b.packets]
        assert times == sorted(times)

    def test_directions_clamp_independently(self):
        import random as _random

        loop = EventLoop()
        a, b, ch = wire_pair(
            loop, latency=1e-3, jitter_s=5e-3, rng=_random.Random(1)
        )
        a.send(1, FakeFrame())
        b.send(1, FakeFrame())
        a.send(1, FakeFrame())
        b.send(1, FakeFrame())
        loop.run()
        # Two frames each way, in order on each side; the huge jitter
        # on one direction must not delay the other.
        assert len(a.packets) == 2 and len(b.packets) == 2
        assert [t for t, _p, _f in a.packets] == sorted(t for t, _p, _f in a.packets)

    def test_fifo_survives_line_flap(self):
        # busy_until/last_arrival reset on line-down: frames sent after
        # a restore must not queue behind ghosts of dropped frames.
        loop = EventLoop()
        a, b, ch = wire_pair(loop, bandwidth=8e3, latency=0.0)  # 1 KB/s
        for _ in range(10):
            a.send(1, FakeFrame(1000))  # 1 s serialization each
        ch.fail()
        loop.run()
        assert b.packets == []  # all died with the line
        ch.restore()
        loop.run()
        t0 = loop.now
        a.send(1, FakeFrame(1000))
        loop.run()
        assert len(b.packets) == 1
        assert b.packets[0][0] == pytest.approx(t0 + 1.0)  # not t0 + 11s


@settings(deadline=None, max_examples=40)
@given(
    seed=st.integers(0, 2**20),
    jitter=st.floats(0.0, 5e-3),
    bandwidth=st.sampled_from([None, 8e3, 8e6, 1e9]),
    sizes=st.lists(st.integers(1, 2000), min_size=2, max_size=30),
)
def test_fifo_property_under_jitter_and_bandwidth(seed, jitter, bandwidth, sizes):
    """Delivery order equals send order for any jitter/bandwidth mix."""
    import random as _random

    loop = EventLoop()
    a, b, _ch = wire_pair(
        loop,
        bandwidth=bandwidth,
        latency=1e-3,
        jitter_s=jitter,
        rng=_random.Random(seed),
    )
    frames = [FakeFrame(size) for size in sizes]
    gap_rng = _random.Random(seed + 1)
    t = 0.0
    for frame in frames:
        t += gap_rng.uniform(0.0, 2e-3)
        loop.schedule(t, a.send, 1, frame)
    loop.run()
    delivered = [f for _t, _p, f in b.packets]
    assert delivered == frames
    times = [t for t, _p, _f in b.packets]
    assert times == sorted(times)


class TestFailRandomLink:
    def _net(self, n):
        def sw(name, ports, network):
            return Recorder(name, network.loop)

        def host(name, network):
            return Recorder(name, network.loop)

        return Network(line(n), sw, host)

    def test_skips_links_that_are_already_down(self):
        import random as _random

        net = self._net(4)  # 3 switch-switch links
        downed = set()
        for _ in range(3):
            link = net.fail_random_link(rng=_random.Random(0))
            key = link.key()
            assert key not in downed  # rng is constant: only skipping works
            downed.add(key)
        assert len(downed) == 3

    def test_raises_when_every_link_is_down(self):
        from repro.topology.graph import TopologyError

        net = self._net(3)
        net.fail_random_link()
        net.fail_random_link()
        with pytest.raises(TopologyError, match="no live"):
            net.fail_random_link()

    def test_restored_links_are_candidates_again(self):
        net = self._net(3)
        first = net.fail_random_link()
        second = net.fail_random_link()
        net.restore_link(
            first.a.switch, first.a.port, first.b.switch, first.b.port
        )
        third = net.fail_random_link()
        assert third.key() == first.key()
        assert second.key() != third.key()


class TestPerfCounters:
    def test_channel_counters_gated_off_by_default(self):
        loop = EventLoop()
        a, b, ch = wire_pair(loop)
        a.send(1, FakeFrame())
        loop.run()
        assert ch._stats is None  # nothing allocated when disabled

    def test_channel_counters_accumulate(self):
        from repro.netsim import PerfCounters

        loop = EventLoop()
        a, b, ch = wire_pair(loop, bandwidth=8e6, latency=0.0)
        stats = PerfCounters()
        ch.enable_counters(stats)
        a.send(1, FakeFrame(1000))
        a.send(1, FakeFrame(1000))  # queues behind frame 1 for 1 ms
        loop.run()
        assert stats.frames == 2
        assert stats.bits == pytest.approx(16000)
        assert stats.wait_s == pytest.approx(1e-3)

    def test_device_counters_track_service_and_depth(self):
        from repro.netsim import PerfCounters

        loop = EventLoop()
        a, b, _ch = wire_pair(loop, latency=0.0)
        b.proc_delay = 1e-3
        stats = PerfCounters()
        b.enable_counters(stats)
        for _ in range(3):
            a.send(1, FakeFrame())
        loop.run()
        assert stats.frames == 3
        assert stats.service_s == pytest.approx(3e-3)
        assert stats.depth_max == 2  # two frames queued behind the first

    def test_tracer_wires_counters_into_network(self):
        tracer = Tracer(counters_enabled=True)

        def sw(name, ports, network):
            return Recorder(name, network.loop)

        def host(name, network):
            return Recorder(name, network.loop)

        net = Network(line(2, hosts_per_switch=1), sw, host, tracer=tracer)
        net.hosts["hL0_0"].send(1, FakeFrame())
        net.run_until_idle()
        report = tracer.report().counters
        assert any(label.startswith("device:") for label in report)
        assert any(label.startswith("link:") for label in report)
        assert any(label.startswith("nic:") for label in report)
        assert sum(c["frames"] for c in report.values()) > 0
