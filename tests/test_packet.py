"""Tests for the packet format: tags, wire encoding, sizes."""

import pytest

from repro.core.packet import (
    DUMBNET_MTU,
    END_OF_PATH,
    ETHERNET_HEADER_BYTES,
    ETHERTYPE_DUMBNET,
    ETHERTYPE_NOTIFY,
    ID_QUERY,
    MAX_PORT_TAG,
    Packet,
    PacketFormatError,
    PathTags,
    decode_tags,
    encode_tags,
)


class TestWireEncoding:
    def test_roundtrip(self):
        for ports in ([], [1], [2, 3, 5], [0, 7, 254]):
            assert decode_tags(encode_tags(ports)) == ports

    def test_terminator_appended(self):
        raw = encode_tags([2, 3])
        assert raw[-1] == END_OF_PATH
        assert len(raw) == 3

    def test_reject_tag_out_of_range(self):
        with pytest.raises(PacketFormatError):
            encode_tags([255])
        with pytest.raises(PacketFormatError):
            encode_tags([-1])

    def test_decode_requires_terminator(self):
        with pytest.raises(PacketFormatError):
            decode_tags(bytes([1, 2]))
        with pytest.raises(PacketFormatError):
            decode_tags(b"")

    def test_decode_rejects_embedded_terminator(self):
        with pytest.raises(PacketFormatError):
            decode_tags(bytes([1, END_OF_PATH, 2, END_OF_PATH]))


class TestPathTags:
    def test_pop_sequence(self):
        tags = PathTags([2, 3, 5])
        assert not tags.at_end
        assert tags.peek() == 2
        assert tags.pop() == 2
        assert tags.pop() == 3
        assert tags.pop() == 5
        assert tags.at_end

    def test_pop_past_end_raises(self):
        tags = PathTags([1])
        tags.pop()
        with pytest.raises(PacketFormatError):
            tags.pop()
        with pytest.raises(PacketFormatError):
            tags.peek()

    def test_remaining_and_original(self):
        tags = PathTags([4, 5, 6])
        tags.pop()
        assert tags.remaining == (5, 6)
        assert tags.original == (4, 5, 6)
        assert tags.consumed == 1

    def test_wire_bytes_shrink_per_hop(self):
        tags = PathTags([1, 2, 3])
        assert tags.wire_bytes == 4  # 3 tags + terminator
        tags.pop()
        assert tags.wire_bytes == 3

    def test_wire_roundtrip(self):
        tags = PathTags([1, 2, 3])
        tags.pop()
        clone = PathTags.from_wire(tags.to_wire())
        assert clone.remaining == (2, 3)

    def test_copy_independent_cursor(self):
        tags = PathTags([1, 2])
        clone = tags.copy()
        tags.pop()
        assert clone.remaining == (1, 2)
        assert tags.remaining == (2,)

    def test_equality_on_remaining(self):
        a = PathTags([1, 2, 3])
        b = PathTags([9, 2, 3])
        a.pop()
        b.pop()
        assert a == b
        assert hash(a) == hash(b)

    def test_rejects_out_of_range(self):
        with pytest.raises(PacketFormatError):
            PathTags([300])

    def test_max_port_tag_boundary(self):
        PathTags([MAX_PORT_TAG])  # ok
        PathTags([ID_QUERY])  # 0 is valid (the query tag)


class TestPacket:
    def test_size_includes_tags(self):
        packet = Packet(src="a", tags=PathTags([1, 2, 3]), payload_bytes=100)
        assert packet.size_bytes == ETHERNET_HEADER_BYTES + 100 + 4
        packet.tags.pop()
        assert packet.size_bytes == ETHERNET_HEADER_BYTES + 100 + 3

    def test_size_without_tags(self):
        packet = Packet(src="a", ethertype=ETHERTYPE_NOTIFY, payload_bytes=20)
        assert packet.size_bytes == ETHERNET_HEADER_BYTES + 20 + 1

    def test_fork_copies_tag_cursor(self):
        packet = Packet(src="a", tags=PathTags([1, 2]))
        packet.tags.pop()
        clone = packet.fork()
        assert clone.tags.remaining == (2,)
        clone.tags.pop()
        assert packet.tags.remaining == (2,)

    def test_fork_gets_new_uid(self):
        packet = Packet(src="a")
        assert packet.fork().uid != packet.uid

    def test_mtu_constant(self):
        # The paper sets host MTU to 1450 to leave label room.
        assert DUMBNET_MTU == 1450

    def test_repr_is_stable(self):
        packet = Packet(src="a", dst="b", tags=PathTags([7]))
        text = repr(packet)
        assert "a" in text and "7" in text
