"""Cross-extension integration: verifier-enforced tenants on a live
fabric, router chains, QoS fabrics, notify-script delay."""

import pytest

from repro.core.fabric import DumbNetFabric
from repro.core.l3router import AddressMap, L3Datagram, SoftwareRouter
from repro.core.qos import QosSwitch
from repro.core.virtualization import VirtualNetworkManager
from repro.netsim import LinkSpec
from repro.topology import Topology, leaf_spine, paper_testbed


class TestTenantEnforcementOnLiveFabric:
    """The Section 6.1 loop closed: applications route themselves, the
    agent's verifier (fed by the tenant manager) polices the dataplane."""

    @pytest.fixture
    def rig(self):
        fabric = DumbNetFabric(paper_testbed(), controller_host="h0_0", seed=7)
        fabric.adopt_blueprint()
        fabric.warm_paths([("h0_1", "h1_1")])
        manager = VirtualNetworkManager(fabric.topology)
        manager.create_tenant(
            "blue", hosts=["h0_1", "h1_1"], switches=["spine0"]
        )
        agent = fabric.agents["h0_1"]
        agent.path_verifier = lambda path: manager.path_allowed(
            "h0_1", "h0_1", "h1_1", path
        )
        return fabric, manager, agent

    def test_compliant_app_route_flows(self, rig):
        fabric, manager, agent = rig
        entry = agent.path_table.entry("h1_1")
        compliant = next(
            p for p in entry.primaries if p.switches[1] == "spine0"
        )
        agent.routing_function = lambda a, d, f: compliant
        agent.send_app("h1_1", "legit", flow_key="f")
        fabric.run_until_idle()
        assert "legit" in [d[2] for d in fabric.agents["h1_1"].delivered]

    def test_violating_app_route_blocked(self, rig):
        fabric, manager, agent = rig
        entry = agent.path_table.entry("h1_1")
        violating = next(
            (p for p in entry.primaries if p.switches[1] == "spine1"), None
        )
        assert violating is not None
        delivered_before = fabric.agents["h1_1"].app_delivered
        blocked = []

        def route(a, d, f):
            blocked.append(1)
            return violating

        agent.routing_function = route
        # The verifier rejects the app route; the default table then
        # serves the packet (possibly via spine0) -- isolation holds at
        # the routing-function boundary.
        agent.send_app("h1_1", "smuggled", flow_key="f2")
        fabric.run_until_idle()
        assert agent.dropped_invalid >= 1


class TestRouterChain:
    """Two routers in sequence: A -> gw1 -> B -> gw2 -> C."""

    def _build(self):
        topo = Topology()
        for sw, ports in (("X", 16), ("Y", 16), ("Z", 16)):
            topo.add_switch(sw, ports)
        # One physical fabric; the "subnets" are logical (L3) slices,
        # so a single controller serves all three segments.
        topo.add_link("X", 8, "Y", 8)
        topo.add_link("Y", 9, "Z", 8)
        topo.add_host("a", "X", 1)
        topo.add_host("gw1x", "X", 2)
        topo.add_host("gw1y", "Y", 1)
        topo.add_host("gw2y", "Y", 2)
        topo.add_host("gw2z", "Z", 1)
        topo.add_host("c", "Z", 2)
        fabric = DumbNetFabric(topo, controller_host="a", seed=3)
        fabric.adopt_blueprint()
        fabric.warm_paths(
            [("a", "gw1x"), ("gw1y", "gw2y"), ("gw2z", "c")]
        )
        amap = AddressMap()
        amap.bind("10.1.0.1", "10.1.", "a")
        amap.bind("10.2.0.1", "10.2.", "gw2y")
        amap.bind("10.3.0.1", "10.3.", "c")
        gw1 = SoftwareRouter("gw1", amap)
        gw1.add_interface("10.1.", fabric.agents["gw1x"])
        gw1.add_interface("10.2.", fabric.agents["gw1y"])
        gw1.add_route("10.1.", "10.1.")
        # Default route toward gw2's NIC in the shared 10.2 subnet.
        amap.bind("10.2.0.9", "10.2.", "gw2y")
        gw1.add_route("10.", "10.2.", via="10.2.0.9")
        gw2 = SoftwareRouter("gw2", amap)
        gw2.add_interface("10.2.", fabric.agents["gw2y"])
        gw2.add_interface("10.3.", fabric.agents["gw2z"])
        gw2.add_route("10.3.", "10.3.")
        return fabric, amap, gw1, gw2

    def test_two_hop_routing(self):
        fabric, amap, gw1, gw2 = self._build()
        datagram = L3Datagram("10.1.0.1", "10.3.0.1", body="across two")
        fabric.agents["a"].send_app("gw1x", datagram)
        fabric.run_until_idle()
        received = [
            d[2].body
            for d in fabric.agents["c"].delivered
            if isinstance(d[2], L3Datagram)
        ]
        assert "across two" in received
        assert gw1.forwarded == 1 and gw2.forwarded == 1
        # Hop counts incremented along the chain.
        final = [
            d[2] for d in fabric.agents["c"].delivered
            if isinstance(d[2], L3Datagram)
        ][0]
        assert final.hops == 2


class TestQosFabric:
    def test_full_fabric_with_qos_switches(self):
        topo = leaf_spine(2, 2, 2, num_ports=16)
        fabric = DumbNetFabric(
            topo, controller_host="h0_0", seed=4, switch_cls=QosSwitch
        )
        result = fabric.bootstrap()  # discovery through QoS switches
        assert result.view.same_wiring(topo)
        fabric.agents["h0_1"].send_app("h1_1", "via qos")
        fabric.run_until_idle()
        assert "via qos" in [d[2] for d in fabric.agents["h1_1"].delivered]

    def test_failover_still_works(self):
        topo = leaf_spine(2, 2, 2, num_ports=16)
        fabric = DumbNetFabric(
            topo, controller_host="h0_0", seed=4, switch_cls=QosSwitch
        )
        fabric.adopt_blueprint()
        fabric.agents["h0_1"].send_app("h1_1", "warm")
        fabric.run_until_idle()
        fabric.fail_link("leaf0", 1, "spine0", 1)
        fabric.run_until_idle()
        fabric.agents["h0_1"].send_app("h1_1", "after")
        fabric.run_until_idle()
        assert "after" in [d[2] for d in fabric.agents["h1_1"].delivered]


class TestNotifyScriptDelay:
    def test_script_delay_shifts_stage1(self):
        delays = {}
        for script_delay in (0.0, 0.03):
            fabric = DumbNetFabric(
                paper_testbed(), controller_host="h0_0", seed=5,
                notify_script_delay_s=script_delay,
            )
            fabric.adopt_blueprint()
            fabric.tracer.clear()
            start = fabric.now
            fabric.fail_link("leaf2", 1, "spine0", 3)
            fabric.run_until_idle()
            news = fabric.tracer.first_time_per_node("news-received")
            delays[script_delay] = min(t - start for t in news.values())
        assert delays[0.03] >= delays[0.0] + 0.029
