"""Shared fixtures: canonical topologies and bootstrapped fabrics."""

import pytest

from repro.core.fabric import DumbNetFabric
from repro.topology import figure1, leaf_spine, line, paper_testbed, ring


@pytest.fixture
def fig1_topo():
    return figure1()


@pytest.fixture
def testbed_topo():
    return paper_testbed()


@pytest.fixture
def fig1_fabric():
    """The Figure 1 example, bootstrapped with C3 as controller."""
    fabric = DumbNetFabric(figure1(), controller_host="C3", seed=7)
    fabric.bootstrap()
    return fabric


@pytest.fixture
def small_fabric():
    """A small leaf-spine fabric with a blueprint bootstrap (fast)."""
    topo = leaf_spine(spines=2, leaves=3, hosts_per_leaf=2, num_ports=16)
    fabric = DumbNetFabric(topo, controller_host="h0_0", seed=11)
    fabric.adopt_blueprint()
    return fabric
