"""Hybrid-fidelity dataplane tests: ROI selection, channel shaping,
boundary consistency, failure handling, fabric/obs integration."""

import pytest

from repro.core.fabric import DumbNetFabric
from repro.flowsim import (
    FlowNet,
    FluidSimulator,
    RebalancingKPathPolicy,
    SingleShortestPolicy,
)
from repro.hybrid import HybridEngine, RegionOfInterest, build_engine
from repro.netsim.channel import Channel
from repro.netsim.events import EventLoop
from repro.topology import leaf_spine, line


class TestRegionOfInterest:
    def test_empty_and_all(self):
        assert RegionOfInterest.empty().is_empty
        assert not RegionOfInterest.all().is_empty
        assert RegionOfInterest.all().matches_flow(object())

    def test_flow_selectors(self):
        class F:
            tag = "shuffle"
            src = "h0_0"
            dst = "h1_3"

        assert RegionOfInterest.of_tags("shuffle").matches_flow(F())
        assert not RegionOfInterest.of_tags("sort").matches_flow(F())
        assert RegionOfInterest.of_hosts("h1_3").matches_flow(F())
        assert RegionOfInterest.of_hosts("h0_0").matches_flow(F())
        assert not RegionOfInterest.of_hosts("h9_9").matches_flow(F())

    def test_link_selectors(self):
        route = [("htx", "h0_0"), ("tx", "leaf0", 1), ("tx", "spine0", 2)]
        assert RegionOfInterest.of_links(("leaf0", 1)).matches_links(route)
        assert RegionOfInterest.of_links(("tx", "leaf0", 1)).matches_links(route)
        assert not RegionOfInterest.of_links(("leaf0", 9)).matches_links(route)
        assert RegionOfInterest.of_switches("spine0").matches_links(route)
        assert not RegionOfInterest.of_switches("spine1").matches_links(route)
        assert RegionOfInterest.of_links(("leaf0", 1)).needs_route
        assert not RegionOfInterest.of_tags("x").needs_route

    def test_union(self):
        roi = RegionOfInterest.of_tags("a") | RegionOfInterest.of_hosts("h")
        assert roi.tags == {"a"}
        assert roi.hosts == {"h"}

    def test_hot_queues(self):
        util = {("tx", "s", 1): 0.95, ("tx", "s", 2): 0.2}
        roi = RegionOfInterest.hot_queues(util, threshold=0.9)
        assert roi.links == {("tx", "s", 1)}

    def test_bad_link_rejected(self):
        with pytest.raises(ValueError):
            RegionOfInterest.of_links("leaf0")


class _RecvSink:
    def __init__(self):
        self.got = []

    def receive(self, port, packet):
        self.got.append(packet)


class TestChannelBackgroundShaping:
    def _channel(self, bandwidth=1e9):
        loop = EventLoop()
        channel = Channel(loop, bandwidth_bps=bandwidth, latency_s=0.0)
        sink = _RecvSink()
        channel.ends[1].attach(sink, 0)
        return loop, channel, sink

    def test_zero_background_identical_serialization(self):
        loop, channel, sink = self._channel()
        channel.ends[0].transmit("p", 1e6)
        assert channel.ends[0].busy_until == 1e6 / 1e9

    def test_background_steals_bandwidth(self):
        loop, channel, sink = self._channel()
        channel.ends[0].background_bps = 5e8
        channel.ends[0].transmit("p", 1e6)
        # Residual 0.5 Gbps -> twice the serialization time.
        assert channel.ends[0].busy_until == pytest.approx(2e-3)
        loop.run()
        assert sink.got == ["p"]

    def test_saturated_background_never_starves(self):
        loop, channel, sink = self._channel()
        channel.ends[0].background_bps = 2e9  # over capacity
        channel.ends[0].transmit("p", 1e3)
        # Clamped to bandwidth * 1e-6, not zero or negative.
        assert channel.ends[0].busy_until == pytest.approx(1e3 / (1e9 * 1e-6))

    def test_background_applies_on_slow_path_too(self):
        loop, channel, sink = self._channel()
        channel.extra_latency_s = 1e-3  # forces the slow path
        channel.ends[0].background_bps = 5e8
        channel.ends[0].transmit("p", 1e6)
        assert channel.ends[0].busy_until == pytest.approx(2e-3)


def _fig9ish(sim_cls_or_engine, roi=None, hosts=6, size=1e8, failures=()):
    topo = leaf_spine(spines=2, leaves=2, hosts_per_leaf=hosts, num_ports=64)
    net = FlowNet(topo, link_bps=10e9, host_bps=5e9)
    if isinstance(sim_cls_or_engine, str):
        sim = build_engine(
            topo, sim_cls_or_engine, roi=roi,
            policy=RebalancingKPathPolicy(k=2), net=net,
        )
    else:
        sim = sim_cls_or_engine(net, RebalancingKPathPolicy(k=2))
    for i in range(hosts):
        sim.add_flow(f"h0_{i}", f"h1_{i}", size, start_s=i * 1e-3, tag="agg")
    for time_s, action_args in failures:
        sim.at(time_s, lambda a=action_args: getattr(net, a[0])(*a[1:]))
    sim.run()
    return sim


class TestEmptyRoiExactness:
    def test_plain_run_exact(self):
        fluid = _fig9ish(FluidSimulator)
        empty = _fig9ish("hybrid", RegionOfInterest.empty())
        assert [f.finished_at for f in fluid.flows] == [
            f.finished_at for f in empty.flows
        ]
        assert fluid.recomputes == empty.recomputes
        assert fluid.epochs == empty.epochs

    def test_with_failures_exact(self):
        failures = [
            (5e-3, ("fail_link", "leaf0", 1, "spine0", 1)),
            (2e-2, ("restore_link", "leaf0", 1, "spine0", 1)),
        ]
        fluid = _fig9ish(FluidSimulator, failures=failures)
        empty = _fig9ish("hybrid", RegionOfInterest.empty(), failures=failures)
        assert [f.finished_at for f in fluid.flows] == [
            f.finished_at for f in empty.flows
        ]

    def test_build_engine_rejects_roi_for_fluid(self):
        topo = line(2)
        with pytest.raises(ValueError):
            build_engine(topo, "fluid", roi=RegionOfInterest.of_hosts("x"))
        with pytest.raises(ValueError):
            build_engine(topo, "warp")


class TestPromotion:
    def test_host_roi_promotes_only_matching_flow(self):
        sim = _fig9ish("hybrid", RegionOfInterest.of_hosts("h1_0"))
        assert sim.promoted_total == 1
        assert sim.promoted_finished == 1
        promoted = [f for f in sim.flows if f.pinned]
        assert len(promoted) == 1
        assert promoted[0].dst == "h1_0"
        assert all(f.done for f in sim.flows)

    def test_promoted_headline_matches_fluid(self):
        fluid = _fig9ish(FluidSimulator)
        hybrid = _fig9ish("hybrid", RegionOfInterest.of_hosts("h1_0"))
        assert hybrid.completion_time("agg") == pytest.approx(
            fluid.completion_time("agg"), rel=0.05
        )

    def test_promote_all_headline_matches_fluid(self):
        fluid = _fig9ish(FluidSimulator)
        packet = _fig9ish("packet")
        assert packet.promoted_total == 6
        assert packet.completion_time("agg") == pytest.approx(
            fluid.completion_time("agg"), rel=0.05
        )

    def test_tag_roi(self):
        sim = _fig9ish("hybrid", RegionOfInterest.of_tags("agg"))
        assert sim.promoted_total == 6

    def test_link_roi_promotes_crossing_flows(self):
        # Promote everything crossing spine0: with k=2 rebalancing the
        # flows split across both spines, so a strict subset promotes.
        sim = _fig9ish("hybrid", RegionOfInterest.of_switches("spine0"))
        assert 1 <= sim.promoted_total < 6
        assert all(f.done for f in sim.flows)

    def test_promoted_flow_survives_reroute(self):
        topo = leaf_spine(2, 2, 2, num_ports=16)
        net = FlowNet(topo, link_bps=1e9, host_bps=1e9)
        sim = HybridEngine(
            net, RebalancingKPathPolicy(k=2),
            roi=RegionOfInterest.of_hosts("h1_0"),
        )
        flow = sim.add_flow("h0_0", "h1_0", 2e9)
        # Kill whichever uplink it is on; the other one stays alive.
        sim.at(0.5, lambda: net.fail_link("leaf0", 1, "spine0", 1))
        sim.run()
        assert flow.done
        # 2 Gb at ~1 Gbps, small epoch-boundary detection lag allowed.
        assert flow.finished_at == pytest.approx(2.0, rel=0.1)

    def test_promoted_flow_stalls_then_resumes(self):
        topo = leaf_spine(2, 2, 2, num_ports=16)
        net = FlowNet(topo, link_bps=1e9, host_bps=1e9)
        sim = HybridEngine(
            net, RebalancingKPathPolicy(k=2),
            roi=RegionOfInterest.of_hosts("h1_0"),
        )
        flow = sim.add_flow("h0_0", "h1_0", 2e9)
        sim.at(0.5, lambda: net.fail_link("leaf0", 1, "spine0", 1))
        sim.at(0.5, lambda: net.fail_link("leaf0", 2, "spine1", 1))
        sim.at(1.5, lambda: net.restore_link("leaf0", 1, "spine0", 1))
        sim.run()
        # Stalled 0.5..1.5, so ~1 s of dead time on a ~2 s transfer.
        assert flow.done
        assert flow.finished_at == pytest.approx(3.0, rel=0.1)

    def test_fully_stalled_promoted_flow_ends_run(self):
        topo = leaf_spine(2, 2, 2, num_ports=16)
        net = FlowNet(topo, link_bps=1e9, host_bps=1e9)
        sim = HybridEngine(
            net, RebalancingKPathPolicy(k=2),
            roi=RegionOfInterest.of_hosts("h1_0"),
        )
        flow = sim.add_flow("h0_0", "h1_0", 2e9)
        sim.at(0.5, lambda: net.fail_link("leaf0", 1, "spine0", 1))
        sim.at(0.5, lambda: net.fail_link("leaf0", 2, "spine1", 1))
        sim.run()  # must terminate, not spin
        assert not flow.done
        assert flow.stalled


class TestBoundaryConsistency:
    def test_fluid_peer_keeps_fair_share(self):
        """A fluid flow sharing a link with a promoted flow finishes on
        its fluid schedule: the frozen packet-measured demand feeds the
        promoted flow back at its real rate, not at zero or infinity."""
        topo = line(2, hosts_per_switch=2)
        net = FlowNet(topo, link_bps=1e9, host_bps=1e9)
        sim = HybridEngine(
            net, SingleShortestPolicy(),
            roi=RegionOfInterest.of_hosts("hL1_0"),
        )
        promoted = sim.add_flow("hL0_0", "hL1_0", 1e9)
        fluid_peer = sim.add_flow("hL0_1", "hL1_1", 1e9)
        sim.run()
        # Fluid-only answer: both share the 1 Gbps cable, done at ~2 s.
        assert promoted.finished_at == pytest.approx(2.0, rel=0.05)
        assert fluid_peer.finished_at == pytest.approx(2.0, rel=0.05)
        # The two fidelities agreed about the promoted flow's rate.
        assert sim.consistency_max_rel_err < 0.2

    def test_hybrid_report_shape(self):
        sim = _fig9ish("hybrid", RegionOfInterest.of_hosts("h1_0"))
        report = sim.report().as_dict()
        assert report["kind"] == "hybrid-report"
        assert report["promoted"]["total"] == 1
        assert report["promoted"]["finished"] == 1
        assert report["packet_region"]["frames_delivered"] > 0
        assert report["boundary"]["couplings"] > 0
        assert 0 <= report["boundary"]["consistency_max_rel_err"] < 1.0
        assert report["roi"]["hosts"] == ["h1_0"]

    def test_link_utilisation_feeds_hot_queues(self):
        topo = line(2, hosts_per_switch=2)
        net = FlowNet(topo, link_bps=1e9, host_bps=1e9)
        sim = HybridEngine(
            net, SingleShortestPolicy(), roi=RegionOfInterest.empty()
        )
        sim.add_flow("hL0_0", "hL1_0", 1e9)
        sim.add_flow("hL0_1", "hL1_1", 1e9)
        sim.run(until=0.5)  # mid-run: the allocation is live
        util = sim.link_utilisation()
        assert util
        assert all(0 <= u <= 1 + 1e-9 for u in util.values())
        # Both flows squeeze through the one inter-switch cable, which
        # is therefore saturated and shows up as an ECN-style hot queue.
        roi = RegionOfInterest.hot_queues(util, threshold=0.9)
        assert roi.links


class TestFabricIntegration:
    def _topo(self):
        return leaf_spine(2, 2, 2, num_ports=16)

    def test_packet_engine_is_default_and_bare(self):
        fabric = DumbNetFabric.from_topology(self._topo(), bootstrap=None)
        assert fabric.engine == "packet"
        assert fabric.dataplane is None

    def test_fluid_engine_attaches_dataplane(self):
        fabric = DumbNetFabric.from_topology(
            self._topo(), bootstrap=None, engine="fluid"
        )
        assert fabric.engine == "fluid"
        assert isinstance(fabric.dataplane, FluidSimulator)
        assert not isinstance(fabric.dataplane, HybridEngine)

    def test_hybrid_engine_attaches_dataplane(self):
        fabric = DumbNetFabric.from_topology(
            self._topo(), bootstrap=None, engine="hybrid",
            roi=RegionOfInterest.of_hosts("h1_0"),
        )
        assert isinstance(fabric.dataplane, HybridEngine)
        assert fabric.dataplane.roi.hosts == {"h1_0"}

    def test_invalid_engine_combinations_rejected(self):
        with pytest.raises(ValueError):
            DumbNetFabric.from_topology(
                self._topo(), bootstrap=None, engine="quantum"
            )
        with pytest.raises(ValueError):
            DumbNetFabric.from_topology(
                self._topo(), bootstrap=None, engine="packet",
                roi=RegionOfInterest.of_hosts("h1_0"),
            )

    def test_observe_covers_the_fluid_engine(self):
        fabric = DumbNetFabric.from_topology(
            self._topo(), bootstrap=None, engine="hybrid",
            roi=RegionOfInterest.of_hosts("h1_0"),
        )
        sim = fabric.dataplane
        sim.add_flow("h0_0", "h1_0", 1e8)
        sim.add_flow("h0_1", "h1_1", 1e8)
        sim.run()
        observation = fabric.observe()
        plane = observation.as_dict()["dataplane"]
        assert plane["kind"] == "hybrid-report"
        assert plane["flows"]["completed"] == 2
        prom = observation.to_prometheus()
        assert "dumbnet_fluid_flows_completed" in prom
        assert "dumbnet_hybrid_consistency_rel_err" in prom

    def test_observe_without_dataplane_reports_none(self):
        fabric = DumbNetFabric.from_topology(self._topo(), bootstrap=None)
        assert fabric.observe().as_dict()["dataplane"] is None
