"""pHost-style receiver-driven transport tests."""

import pytest

from repro.core.ecn import EcnSwitch
from repro.core.fabric import DumbNetFabric
from repro.core.phost import PHostEndpoint
from repro.netsim import LinkSpec
from repro.topology import leaf_spine


def build_fabric(link_bps=1e9, switch_cls=None, hosts_per_leaf=6):
    topo = leaf_spine(2, 2, hosts_per_leaf, num_ports=32)
    spec = LinkSpec(bandwidth_bps=link_bps, latency_s=2e-6)
    fabric = DumbNetFabric(
        topo, controller_host="h0_0", seed=8,
        link_spec=spec, host_link_spec=spec, switch_cls=switch_cls,
    )
    fabric.adopt_blueprint()
    return fabric


def endpoints(fabric, hosts, link_bps=1e9):
    return {
        h: PHostEndpoint(fabric.agents[h], downlink_bps=link_bps)
        for h in hosts
    }


class TestBasicTransfer:
    def test_single_transfer_completes(self):
        fabric = build_fabric()
        eps = endpoints(fabric, ["h0_1", "h1_1"])
        fabric.warm_paths([("h0_1", "h1_1"), ("h1_1", "h0_1")])
        done = []
        eps["h0_1"].transfer("h1_1", 20, on_complete=done.append)
        fabric.run_until_idle()
        assert done and done[0].packets == 20
        assert done[0].duration_s > 0

    def test_transfer_paced_at_downlink(self):
        """20 packets at 1 Gbps downlink: at least 20 token intervals."""
        fabric = build_fabric(link_bps=1e9)
        eps = endpoints(fabric, ["h0_1", "h1_1"], link_bps=1e9)
        fabric.warm_paths([("h0_1", "h1_1"), ("h1_1", "h0_1")])
        done = []
        eps["h0_1"].transfer("h1_1", 20, on_complete=done.append)
        fabric.run_until_idle()
        ideal = 20 * 1450 * 8 / 1e9
        assert done[0].duration_s >= ideal * 0.9

    def test_invalid_transfer_rejected(self):
        fabric = build_fabric()
        eps = endpoints(fabric, ["h0_1"])
        with pytest.raises(ValueError):
            eps["h0_1"].transfer("h1_1", 0)

    def test_non_phost_traffic_passes_through(self):
        fabric = build_fabric()
        seen = []
        fabric.agents["h1_1"].app_receive = lambda s, p, t: seen.append(p)
        PHostEndpoint(fabric.agents["h1_1"])
        fabric.warm_paths([("h0_1", "h1_1")])
        fabric.agents["h0_1"].send_app("h1_1", "plain payload")
        fabric.run_until_idle()
        assert "plain payload" in seen


class TestIncastBehaviour:
    def _run_incast(self, switch_cls=None):
        fabric = build_fabric(link_bps=1e9, switch_cls=switch_cls)
        senders = ["h0_1", "h0_2", "h0_3", "h0_4", "h0_5"]
        sink = "h1_1"
        eps = endpoints(fabric, senders + [sink], link_bps=1e9)
        pairs = [(s, sink) for s in senders] + [(sink, s) for s in senders]
        fabric.warm_paths(pairs)
        done = []
        for s in senders:
            eps[s].transfer(sink, 12, on_complete=done.append)
        fabric.run_until_idle()
        return fabric, done

    def test_all_senders_complete(self):
        _fabric, done = self._run_incast()
        assert len(done) == 5
        assert all(d.packets == 12 for d in done)

    def test_aggregate_near_ideal(self):
        """60 packets through one 1 Gbps downlink: ~0.7 ms ideal; the
        receiver-paced schedule should be within 2x of it."""
        _fabric, done = self._run_incast()
        finish = max(d.duration_s for d in done)
        ideal = 60 * 1450 * 8 / 1e9
        assert finish < ideal * 2

    def test_receiver_pacing_tames_marking(self):
        """ECN fabric: pHost incast should mark far fewer packets than
        a simultaneous blast of the same volume."""
        fabric, _done = self._run_incast(switch_cls=EcnSwitch)
        phost_marks = sum(
            sw.packets_marked for sw in fabric.network.switches.values()
        )

        # The blast: same packets, no pacing.
        blast = build_fabric(link_bps=1e9, switch_cls=EcnSwitch)
        senders = ["h0_1", "h0_2", "h0_3", "h0_4", "h0_5"]
        blast.warm_paths([(s, "h1_1") for s in senders])
        for s in senders:
            for i in range(12):
                blast.agents[s].send_app(
                    "h1_1", ("blast", s, i), payload_bytes=1450,
                    flow_key=(s, "h1_1"),
                )
        blast.run_until_idle()
        blast_marks = sum(
            sw.packets_marked for sw in blast.network.switches.values()
        )
        assert blast_marks > 0
        assert phost_marks < blast_marks / 2

    def test_srpt_favors_short_messages(self):
        """A 4-packet message granted alongside a 40-packet one should
        finish much earlier than the big one (shortest-remaining-first)."""
        fabric = build_fabric(link_bps=1e9)
        eps = endpoints(
            fabric, ["h0_1", "h0_2", "h1_1"], link_bps=1e9
        )
        fabric.warm_paths(
            [("h0_1", "h1_1"), ("h0_2", "h1_1"),
             ("h1_1", "h0_1"), ("h1_1", "h0_2")]
        )
        finished = {}
        eps["h0_1"].transfer(
            "h1_1", 40, on_complete=lambda s: finished.setdefault("big", s)
        )
        eps["h0_2"].transfer(
            "h1_1", 4, on_complete=lambda s: finished.setdefault("small", s)
        )
        fabric.run_until_idle()
        assert finished["small"].duration_s < finished["big"].duration_s / 2
