"""Partition-aware parallel simulation tests.

The equivalence oracle is layered: ``partitions=1`` must be *byte-
identical* to the serial loop (pinned golden digest), inline multi-
partition runs must be deterministic and reach the same discovery
result as serial, and fork mode must reproduce the inline coordinator's
window/message schedule exactly.
"""

import hashlib

import pytest

from repro.core.fabric import DumbNetFabric
from repro.netsim import LinkSpec, SimulationError
from repro.netsim.partition import PartitionPlan
from repro.topology import cube, fat_tree, line, paper_testbed


def trace_digest(fabric):
    blob = "\n".join(
        f"{ev.time!r}|{ev.category}|{ev.node}|{ev.detail!r}"
        for ev in fabric.tracer
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def small_cube():
    return cube((4, 3, 2), num_ports=16)


class TestPartitionPlan:
    def test_grid_slabs_cover_and_are_contiguous(self):
        topo = small_cube()
        plan = PartitionPlan.grid(topo, 2)
        assert sorted(plan.assignment) == sorted(topo.switches)
        assert plan.sizes() == [12, 12]
        # Slabs along x: every switch with the same x shares a pid, and
        # pids are monotone in x.
        by_x = {}
        for sw, pid in plan.assignment.items():
            x = int(sw[1:].split("_")[0])
            by_x.setdefault(x, set()).add(pid)
        assert all(len(pids) == 1 for pids in by_x.values())
        order = [pids.pop() for x, pids in sorted(by_x.items())]
        assert order == sorted(order)

    def test_from_pods_groups_pods_and_core_joins_zero(self):
        topo = fat_tree(4)
        plan = PartitionPlan.from_pods(topo, 4)
        for sw in topo.switches:
            if sw.startswith(("edge", "agg")):
                pod = int(sw[3:].split("_")[0] if sw.startswith("agg")
                          else sw[4:].split("_")[0])
                assert plan.pid_of(sw) == pod % 4
            else:
                assert plan.pid_of(sw) == 0

    def test_balanced_covers_every_switch(self):
        topo = line(10)
        plan = PartitionPlan.balanced(topo, 3)
        assert sorted(plan.assignment) == sorted(topo.switches)
        assert all(size > 0 for size in plan.sizes())

    def test_auto_dispatches_by_naming(self):
        assert PartitionPlan.auto(small_cube(), 2).sizes() == [12, 12]
        assert PartitionPlan.auto(fat_tree(4), 2).num_partitions == 2
        assert PartitionPlan.auto(line(6), 2).num_partitions == 2

    def test_rooted_at_moves_partition_to_zero(self):
        topo = small_cube()
        plan = PartitionPlan.grid(topo, 2)
        victim = next(sw for sw, pid in plan.assignment.items() if pid == 1)
        rooted = plan.rooted_at(victim)
        assert rooted.pid_of(victim) == 0
        assert sorted(rooted.sizes()) == sorted(plan.sizes())
        # Already-rooted plans come back unchanged.
        assert plan.rooted_at(next(
            sw for sw, pid in plan.assignment.items() if pid == 0
        )) is plan

    def test_bad_assignments_rejected(self):
        with pytest.raises(ValueError):
            PartitionPlan({"s1": 5}, 2)
        with pytest.raises(SimulationError):
            PartitionPlan.grid(line(4), 2)  # not cube-named
        with pytest.raises(SimulationError):
            PartitionPlan.balanced(line(3), 7)  # more parts than switches


class TestGoldenSerialEquivalence:
    """partitions=1 must be byte-identical to the serial loop.

    Constants pinned in test_fabric_and_misc.TestGoldenTrace: any drift
    there is a netsim regression; any drift *here only* means the
    partition plumbing perturbed the serial path.
    """

    GOLDEN_DIGEST = (
        "02c68774122d27d6ea9d068bd7a4456af68f8999b860831a9c201a6c70facbd0"
    )
    GOLDEN_EVENTS_RUN = 171663
    GOLDEN_FINAL_CLOCK = 0.14248748159999963

    def test_partitions_1_matches_pinned_serial_digest(self):
        fabric = DumbNetFabric.from_topology(
            paper_testbed(), controller_host="h0_0", seed=1, partitions=1
        )
        assert trace_digest(fabric) == self.GOLDEN_DIGEST
        assert fabric.loop.events_run == self.GOLDEN_EVENTS_RUN
        assert fabric.now == self.GOLDEN_FINAL_CLOCK

    def test_single_partition_plan_object_matches_too(self):
        # Even an explicit 1-partition *plan* (sim object built, window
        # code reachable) must leave the trace untouched.
        topo = paper_testbed()
        plan = PartitionPlan({sw: 0 for sw in topo.switches}, 1)
        fabric = DumbNetFabric.from_topology(
            topo, controller_host="h0_0", seed=1, partition_plan=plan
        )
        assert fabric.network.sim is not None
        assert trace_digest(fabric) == self.GOLDEN_DIGEST
        assert fabric.loop.events_run == self.GOLDEN_EVENTS_RUN


class TestInlinePartitioned:
    def test_discovery_equivalent_to_serial(self):
        serial = DumbNetFabric.from_topology(small_cube(), seed=1)
        part = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=2)
        assert part.controller.view.same_wiring(serial.controller.view)
        assert len(part.agents) == len(serial.agents)
        report = part.partition_report()
        assert report["partitions"] == 2
        assert report["boundary_links"] > 0
        assert report["messages"] > 0  # probes really crossed the cut

    def test_run_to_run_determinism(self):
        def build():
            fabric = DumbNetFabric.from_topology(
                small_cube(), seed=1, partitions=2
            )
            return trace_digest(fabric), fabric.partition_report()

        d1, r1 = build()
        d2, r2 = build()
        assert d1 == d2
        assert r1 == r2

    def test_cross_partition_traffic_delivered(self):
        part = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=2)
        src = part.controller_host
        dst = next(
            h for h in part.topology.hosts
            if part.network._pid_of_host(h) != part.network._pid_of_host(src)
        )
        part.agents[src].send_app(dst, ("ping", 1), payload_bytes=100)
        part.run_until_idle()
        assert part.agents[dst].delivered
        time, sender, payload = part.agents[dst].delivered[-1]
        assert sender == src
        assert payload == ("ping", 1)

    def test_three_and_four_partitions_still_discover(self):
        for n in (3, 4):
            part = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=n)
            serial_view = DumbNetFabric.from_topology(
                small_cube(), seed=1
            ).controller.view
            assert part.controller.view.same_wiring(serial_view)

    def test_fault_lands_in_owning_partition_loop(self):
        """A fault fired from partition 0's loop against a link wholly
        inside another partition must execute in the *owner's* loop at
        the initiator's timestamp -- both endpoint devices see the
        port-down after exactly the detection delay."""
        part = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=2)
        plan = part.network.plan
        link = next(
            lk for lk in part.topology.links
            if plan.pid_of(lk.a.switch) == plan.pid_of(lk.b.switch) == 1
        )
        channel = part.network.link_channel(
            link.a.switch, link.a.port, link.b.switch, link.b.port
        )
        t0 = part.now
        cut_at = t0 + 0.001
        # Chaos-style: the op fires inside partition 0's loop mid-run.
        part.loop.schedule_at(
            cut_at,
            part.network.fail_link,
            link.a.switch, link.a.port, link.b.switch, link.b.port,
        )
        part.run_until_idle()
        assert not channel.up
        owner_loop = part.network.loops[1]
        assert channel.loop is owner_loop  # intra-partition channel
        sw_a = part.network.switches[link.a.switch]
        sw_b = part.network.switches[link.b.switch]
        assert not sw_a.port_is_up(link.a.port)
        assert not sw_b.port_is_up(link.b.port)

    def test_boundary_cut_notifies_both_sides(self):
        part = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=2)
        plan = part.network.plan
        link = next(
            lk for lk in part.topology.links
            if plan.pid_of(lk.a.switch) != plan.pid_of(lk.b.switch)
        )
        part.fail_link(link.a.switch, link.a.port, link.b.switch, link.b.port)
        part.run_until_idle()
        channel = part.network.link_channel(
            link.a.switch, link.a.port, link.b.switch, link.b.port
        )
        assert channel._side_up == [False, False]
        part.restore_link(link.a.switch, link.a.port, link.b.switch, link.b.port)
        part.run_until_idle()
        assert channel._side_up == [True, True]

    def test_boundary_channel_rejects_fault_knobs(self):
        part = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=2)
        plan = part.network.plan
        link = next(
            lk for lk in part.topology.links
            if plan.pid_of(lk.a.switch) != plan.pid_of(lk.b.switch)
        )
        channel = part.network.link_channel(
            link.a.switch, link.a.port, link.b.switch, link.b.port
        )
        with pytest.raises(SimulationError):
            channel.loss_rate = 0.1
        with pytest.raises(SimulationError):
            channel.extra_latency_s = 1e-3
        channel.loss_rate = 0.0  # zero is always fine

    def test_hotplug_switch_rejected_when_partitioned(self):
        part = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=2)
        with pytest.raises(SimulationError):
            part.hotplug_switch("c9_9_9", 16, [(1, "c0_0_0", 15)])


class TestForkPartitioned:
    def test_fork_matches_inline_schedule_and_result(self):
        serial_view = DumbNetFabric.from_topology(
            small_cube(), seed=1
        ).controller.view
        inline = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=2)
        fork = DumbNetFabric.from_topology(
            small_cube(), seed=1, partitions=2, partition_mode="fork"
        )
        try:
            assert fork.controller.view.same_wiring(serial_view)
            ri, rf = inline.partition_report(), fork.partition_report()
            # The window protocol is deterministic: both coordinators
            # must produce the identical round/message schedule.
            assert rf["rounds"] == ri["rounds"]
            assert rf["messages"] == ri["messages"]
        finally:
            fork.shutdown()

    def test_fork_cross_partition_traffic(self):
        fork = DumbNetFabric.from_topology(
            small_cube(), seed=1, partitions=2, partition_mode="fork"
        )
        try:
            src = fork.controller_host
            assert fork.network._pid_of_host(src) == 0  # plan rooted here
            dst = next(
                h for h in fork.topology.hosts
                if fork.network._pid_of_host(h) != 0
            )
            fork.agents[src].send_app(dst, ("over", "the", "cut"), payload_bytes=64)
            fork.run_until_idle()
        finally:
            fork.shutdown()

    def test_fork_rejects_mutation_after_start(self):
        fork = DumbNetFabric.from_topology(
            small_cube(), seed=1, partitions=2, partition_mode="fork"
        )
        try:
            link = fork.topology.links[0]
            with pytest.raises(SimulationError):
                fork.fail_link(
                    link.a.switch, link.a.port, link.b.switch, link.b.port
                )
        finally:
            fork.shutdown()

    def test_shutdown_is_idempotent(self):
        fork = DumbNetFabric.from_topology(
            small_cube(), seed=1, partitions=2, partition_mode="fork"
        )
        fork.shutdown()
        fork.shutdown()


class TestBoundarySpec:
    def test_boundary_link_spec_sets_lookahead(self):
        part = DumbNetFabric.from_topology(
            small_cube(),
            seed=1,
            partitions=2,
            boundary_link_spec=LinkSpec(latency_s=50e-6),
        )
        report = part.partition_report()
        assert report["lookahead_s"] == pytest.approx(50e-6)
        # Bigger lookahead, fewer coordination rounds than the 1 us
        # default -- that is the whole point of the knob.
        tight = DumbNetFabric.from_topology(small_cube(), seed=1, partitions=2)
        assert report["rounds"] < tight.partition_report()["rounds"]
