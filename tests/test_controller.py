"""Controller tests: path service, gossip overlay, patches, reprobes."""

import pytest

from repro.core.fabric import DumbNetFabric
from repro.core.messages import TopologyChange
from repro.topology import figure1, leaf_spine, paper_testbed


@pytest.fixture
def fabric():
    fab = DumbNetFabric(figure1(), controller_host="C3", seed=5)
    fab.bootstrap()
    return fab


class TestPathService:
    def test_request_produces_usable_paths(self, fabric):
        h1 = fabric.agents["H1"]
        h1.send_app("H2", "x")
        fabric.run_until_idle()
        entry = h1.path_table.entry("H2")
        assert entry is not None and entry.primaries
        # Every cached path must decode to a real route ending at H2.
        topo = fabric.topology
        for path in entry.primaries:
            assert topo.decode_tags("H1", list(path.tags))[-1] == "S4"

    def test_backup_path_cached(self, fabric):
        h4 = fabric.agents["H4"]
        h4.send_app("H5", "x")
        fabric.run_until_idle()
        entry = h4.path_table.entry("H5")
        assert entry.backup is not None
        # Backup must avoid the primary's first hop when possible.
        assert entry.backup.tags != entry.primaries[0].tags

    def test_served_counter(self, fabric):
        before = fabric.controller.path_requests_served
        fabric.agents["H1"].send_app("H5", "x")
        fabric.run_until_idle()
        assert fabric.controller.path_requests_served == before + 1

    def test_unknown_destination_not_found(self, fabric):
        h1 = fabric.agents["H1"]
        h1.send_app("nobody", "x")
        fabric.run_until_idle()
        assert h1.path_table.entry("nobody") is None


class TestGossipOverlay:
    def test_every_host_has_neighbors(self, fabric):
        overlay = fabric.controller.compute_gossip_overlay()
        for host in fabric.topology.hosts:
            assert overlay[host], f"{host} has no gossip neighbors"

    def test_controller_reachable_in_overlay(self, fabric):
        overlay = fabric.controller.compute_gossip_overlay()
        for host, neighbors in overlay.items():
            if host == "C3":
                continue
            names = {n for n, _tags in neighbors}
            assert "C3" in names or names, f"{host}: {names}"

    def test_overlay_floods_the_whole_network(self, fabric):
        """A message flooded along the overlay reaches every host."""
        overlay = fabric.controller.compute_gossip_overlay()
        reached = {"H1"}
        frontier = ["H1"]
        while frontier:
            host = frontier.pop()
            for neighbor, _tags in overlay[host]:
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        assert reached == set(fabric.topology.hosts)

    def test_fanout_cap_respected(self):
        topo = leaf_spine(2, 3, 6, num_ports=32)
        fab = DumbNetFabric(topo, controller_host="h0_0", seed=2)
        fab.adopt_blueprint()
        overlay = fab.controller.compute_gossip_overlay()
        cap = fab.controller.config.gossip_fanout
        for host, neighbors in overlay.items():
            assert len(neighbors) <= cap


class TestFailureStage2:
    def test_view_patched_on_link_down(self, fabric):
        assert fabric.controller.view.has_link("S2", 3, "S5", 2)
        fabric.fail_link("S2", 3, "S5", 2)
        fabric.run_until_idle()
        assert not fabric.controller.view.has_link("S2", 3, "S5", 2)

    def test_patch_reaches_all_hosts(self, fabric):
        fabric.fail_link("S2", 3, "S5", 2)
        fabric.run_until_idle()
        patched = fabric.tracer.first_time_per_node("patch-received")
        hosts = set(fabric.topology.hosts) - {"C3"}
        assert hosts <= set(patched)

    def test_patch_after_stage1(self, fabric):
        fabric.fail_link("S2", 3, "S5", 2)
        fabric.run_until_idle()
        news = fabric.tracer.first_time_per_node("news-received")
        patched = fabric.tracer.first_time_per_node("patch-received")
        for host in patched:
            if host in news:
                assert news[host] <= patched[host]

    def test_replicator_hook_called(self, fabric):
        log = []

        class FakeReplicator:
            def append(self, change):
                log.append(change)

        fabric.controller.replicator = FakeReplicator()
        fabric.fail_link("S2", 3, "S5", 2)
        fabric.run_until_idle()
        assert any(
            isinstance(c, TopologyChange) and c.op == "link-down" for c in log
        )


class TestReprobe:
    def test_link_restoration_rediscovered(self, fabric):
        fabric.fail_link("S2", 3, "S5", 2)
        fabric.run_until_idle()
        assert not fabric.controller.view.has_link("S2", 3, "S5", 2)
        fabric.restore_link("S2", 3, "S5", 2)
        fabric.run_until_idle()
        assert fabric.controller.view.has_link("S2", 3, "S5", 2)
        assert fabric.controller.reprobes_run >= 1

    def test_restored_link_usable_by_hosts(self, fabric):
        # Cut BOTH links to S5 so H5 is unreachable, then restore one.
        fabric.fail_link("S2", 3, "S5", 2)
        fabric.fail_link("S4", 3, "S5", 1)
        fabric.run_until_idle()
        fabric.restore_link("S4", 3, "S5", 1)
        fabric.run_until_idle()
        h4 = fabric.agents["H4"]
        h4.send_app("H5", "revived")
        fabric.run_until_idle()
        assert "revived" in [d[2] for d in fabric.agents["H5"].delivered]


class TestBlueprintBootstrap:
    def test_adopt_blueprint_matches_discovery(self):
        topo = paper_testbed()
        by_probe = DumbNetFabric(topo.copy(), controller_host="h0_0", seed=1)
        probe_view = by_probe.bootstrap().view
        by_blueprint = DumbNetFabric(topo.copy(), controller_host="h0_0", seed=1)
        by_blueprint.adopt_blueprint()
        assert by_blueprint.controller.view.same_wiring(probe_view)


class TestReprobeRearm:
    """Link-up news arriving while a reprobe session is already in
    flight must re-arm a fresh session after the active one finalizes,
    not vanish -- otherwise a port whose first session came up empty
    (lossy fabric, no retries) stays unknown forever."""

    def test_link_up_during_inflight_session_survives(self):
        from repro.core.controller import ControllerConfig
        from repro.core.messages import PortStateNotification

        fab = DumbNetFabric(
            figure1(),
            controller_host="C3",
            seed=5,
            controller_config=ControllerConfig(reprobe_retries=0),
        )
        fab.bootstrap()
        ctl = fab.controller
        edge = ("S2", 3, "S5", 2)
        fab.fail_link(*edge)
        fab.run_until_idle()
        assert ctl.view.peer("S2", 3) is None
        # Every probe crossing the restored cable vanishes: the first
        # sessions will come up empty, and retries are disabled.
        channel = fab.network.link_channel(*edge)
        channel.loss_rate = 1.0
        fab.restore_link(*edge)
        # Deliver the link-up news by hand: the switches' own alarms
        # sit behind ALARM_SUPPRESS_SECONDS, and the contract under
        # test is the controller's, however the news gets there.
        ctl.on_news(PortStateNotification(switch="S2", port=3, up=True, seq=901))
        ctl.on_news(PortStateNotification(switch="S5", port=2, up=True, seq=902))
        fab.run(until=fab.now + 0.005)
        assert ctl._reprobes  # sessions in flight, probes already lost
        # Fresh link-up news lands while those sessions are still
        # inside their settle window (the cable flapped again).
        ctl.on_news(PortStateNotification(switch="S2", port=3, up=True, seq=903))
        ctl.on_news(PortStateNotification(switch="S5", port=2, up=True, seq=904))
        # The re-armed follow-up sessions probe a healthy cable.  Stop
        # well before the switches' own suppressed alarms re-fire
        # (ALARM_SUPPRESS_SECONDS ~ 1s): without the re-arm, the view
        # stays stale for that whole window; with it, the follow-up
        # session heals the link right after the first one finalizes.
        channel.loss_rate = 0.0
        fab.run(until=fab.now + 0.3)
        assert ctl.view.has_link("S2", 3, "S5", 2)
        fab.run_until_idle()
