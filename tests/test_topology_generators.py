"""Structural tests for the topology generators."""

import pytest

from repro.topology import (
    Topology,
    TopologyError,
    center_switch,
    corner_switch,
    cube,
    fat_tree,
    fat_tree_for_switch_count,
    figure1,
    jellyfish,
    leaf_spine,
    line,
    paper_testbed,
    random_connected,
    ring,
)


class TestFatTree:
    def test_k4_counts(self):
        topo = fat_tree(4)
        # 5k^2/4 = 20 switches; (k/2)^2 = 4 cores; hosts k^3/4 = 16.
        assert len(topo.switches) == 20
        assert len(topo.hosts) == 16
        assert sum(1 for s in topo.switches if s.startswith("core")) == 4
        # Links: core-agg k*(k/2)^2 = 16, agg-edge k*(k/2)^2 = 16.
        assert len(topo.links) == 32
        assert topo.is_connected()

    def test_k4_full_bisection_paths(self):
        topo = fat_tree(4)
        # Cross-pod pairs have (k/2)^2 = 4 equal-cost paths.
        paths = topo.k_shortest_switch_paths("edge0_0", "edge1_0", 8)
        shortest = [p for p in paths if len(p) == len(paths[0])]
        assert len(shortest) == 4

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_port_inflation(self):
        topo = fat_tree(4, num_ports=64)
        assert all(topo.num_ports(s) == 64 for s in topo.switches)

    def test_too_many_hosts_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(4, hosts_per_edge=3)

    def test_for_switch_count(self):
        topo = fat_tree_for_switch_count(100)
        assert len(topo.switches) >= 100
        assert topo.is_connected()


class TestLeafSpine:
    def test_testbed_shape(self):
        topo = paper_testbed()
        # "7 switches, 10 links, and 27 hosts" (Section 7.2.1).
        assert len(topo.switches) == 7
        assert len(topo.links) == 10
        assert len(topo.hosts) == 27
        assert topo.is_connected()

    def test_every_leaf_reaches_every_spine(self):
        topo = leaf_spine(2, 5, 5)
        for l in range(5):
            assert set(topo.neighbors(f"leaf{l}")) == {"spine0", "spine1"}

    def test_parallel_uplinks(self):
        topo = leaf_spine(2, 2, 2, uplinks_per_pair=2)
        assert len(topo.links_between("leaf0", "spine0")) == 2

    def test_port_budget_enforced(self):
        with pytest.raises(ValueError):
            leaf_spine(2, 2, 63, num_ports=64)


class TestCube:
    def test_3cube_counts(self):
        topo = cube([3, 3, 3])
        assert len(topo.switches) == 27
        # Torus: n * prod(dims) links = 3 * 27 = 81.
        assert len(topo.links) == 81
        assert topo.is_connected()

    def test_mesh_without_wraparound(self):
        topo = cube([3, 3], wraparound=False, num_ports=16)
        # Mesh links: 2 * 3 * 2 = 12.
        assert len(topo.links) == 12

    def test_side_two_has_single_link(self):
        topo = cube([2, 2], num_ports=16)
        # Wraparound on a side of 2 would duplicate; 4 links total.
        assert len(topo.links) == 4

    def test_corner_and_center(self):
        assert corner_switch([8, 8, 8]) == "c0_0_0"
        assert center_switch([8, 8, 8]) == "c4_4_4"
        topo = cube([3, 3, 3])
        assert topo.has_switch(center_switch([3, 3, 3]))

    def test_hosts_per_switch(self):
        topo = cube([2, 2], hosts_per_switch=2, num_ports=16)
        assert len(topo.hosts) == 8

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            cube([])
        with pytest.raises(ValueError):
            cube([0, 3])

    def test_port_budget(self):
        with pytest.raises(ValueError):
            cube([3, 3, 3], num_ports=6)  # needs 2*3+1


class TestRandomTopologies:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_jellyfish_connected(self, seed):
        topo = jellyfish(num_switches=12, switch_degree=3, seed=seed)
        assert topo.is_connected()
        assert len(topo.hosts) == 12

    def test_jellyfish_degree_bounded(self):
        topo = jellyfish(num_switches=16, switch_degree=4, seed=5)
        for sw in topo.switches:
            assert topo.degree(sw) <= 4

    def test_jellyfish_validation(self):
        with pytest.raises(ValueError):
            jellyfish(1, 1)
        with pytest.raises(ValueError):
            jellyfish(4, 4)

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_random_connected_is_connected(self, seed):
        topo = random_connected(10, extra_links=5, seed=seed)
        assert topo.is_connected()
        assert len(topo.switches) == 10

    def test_random_connected_extra_links(self):
        tree = random_connected(10, extra_links=0, seed=1)
        dense = random_connected(10, extra_links=8, seed=1)
        assert len(dense.links) > len(tree.links)
        assert len(tree.links) == 9  # a spanning tree


class TestSamples:
    def test_figure1_wiring_matches_section41(self):
        topo = figure1()
        # The probing examples pin these links exactly.
        assert topo.has_link("S3", 1, "S1", 1)
        assert topo.has_link("S3", 2, "S2", 1)
        assert topo.has_link("S1", 2, "S4", 2)
        assert topo.has_link("S2", 2, "S4", 1)
        assert topo.host_port("C3").port == 9
        assert topo.host_port("H3").switch == "S3"
        assert topo.is_connected()

    def test_line_and_ring(self):
        assert len(line(5).links) == 4
        assert len(ring(5).links) == 5
        with pytest.raises(ValueError):
            ring(2)
        with pytest.raises(ValueError):
            line(0)
