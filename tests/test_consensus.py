"""Quorum log and replicated topology store tests."""

import pytest

from repro.consensus import (
    Cluster,
    NotLeaderError,
    QuorumLostError,
    ReplicatedTopologyStore,
    apply_change,
)
from repro.core.messages import TopologyChange
from repro.topology import paper_testbed


class TestElection:
    def test_simple_election(self):
        cluster = Cluster(["a", "b", "c"])
        assert cluster.elect("a")
        assert cluster.leader == "a"
        assert cluster.nodes["a"].is_leader

    def test_crashed_candidate_cannot_win(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.nodes["a"].crash()
        assert not cluster.elect("a")
        assert cluster.elect_any() in ("b", "c")

    def test_minority_partition_cannot_elect(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.isolate("a")
        assert not cluster.elect("a")
        assert cluster.elect("b")

    def test_behind_log_loses_election(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.elect("a")
        cluster.append("x")
        cluster.append("y")
        # c has the log (replicated); wipe b's to simulate lag.
        cluster.nodes["b"].log.clear()
        cluster.nodes["b"].commit_index = 0
        cluster.leader = None
        # b cannot win against peers with longer logs... unless the
        # voters are lenient; our rule rejects shorter candidate logs.
        assert not cluster.elect("b")
        assert cluster.elect("c")


class TestAppend:
    def test_append_commits_on_majority(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.elect("a")
        cluster.append("x")
        assert cluster.committed_everywhere() == ["x"]

    def test_append_without_leader_fails(self):
        cluster = Cluster(["a", "b"])
        with pytest.raises(NotLeaderError):
            cluster.append("x")

    def test_append_via_non_leader_fails(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.elect("a")
        with pytest.raises(NotLeaderError):
            cluster.append("x", via="b")

    def test_no_quorum_rolls_back(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.elect("a")
        cluster.isolate("a")
        with pytest.raises(QuorumLostError):
            cluster.append("x")
        # The write never happened anywhere.
        assert cluster.nodes["a"].log == []
        assert not cluster.nodes["a"].is_leader

    def test_failover_preserves_committed_entries(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.elect("a")
        for i in range(5):
            cluster.append(i)
        cluster.nodes["a"].crash()
        cluster.leader = None
        new_leader = cluster.elect_any()
        assert new_leader in ("b", "c")
        assert cluster.committed_everywhere() == [0, 1, 2, 3, 4]
        cluster.append(5)
        assert cluster.committed_everywhere() == [0, 1, 2, 3, 4, 5]

    def test_stale_exleader_cannot_commit(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.elect("a")
        cluster.append("x")
        # Partition the old leader away, elect a new one.
        cluster.isolate("a")
        cluster.elect("b")
        cluster.append("y", via="b")
        # The stale leader's term is dead: its append loses quorum.
        with pytest.raises((NotLeaderError, QuorumLostError)):
            cluster.append("z", via="a")

    def test_recovered_replica_catches_up(self):
        cluster = Cluster(["a", "b", "c"])
        cluster.elect("a")
        cluster.nodes["c"].crash()
        cluster.append("x")
        cluster.append("y")
        cluster.nodes["c"].recover()
        cluster.append("z")  # replication brings c up to date
        assert cluster.nodes["c"].committed == ["x", "y", "z"]

    def test_single_node_cluster(self):
        cluster = Cluster(["solo"])
        cluster.elect("solo")
        cluster.append(1)
        assert cluster.committed_everywhere() == [1]

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])


class TestApplyChange:
    def test_link_down_and_up(self):
        view = paper_testbed()
        apply_change(view, TopologyChange("link-down", ("leaf0", 1, "spine0", 1)))
        assert not view.has_link("leaf0", 1, "spine0", 1)
        apply_change(view, TopologyChange("link-up", ("leaf0", 1, "spine0", 1)))
        assert view.has_link("leaf0", 1, "spine0", 1)

    def test_idempotent_link_down(self):
        view = paper_testbed()
        change = TopologyChange("link-down", ("leaf0", 1, "spine0", 1))
        apply_change(view, change)
        apply_change(view, change)  # no raise

    def test_switch_down(self):
        view = paper_testbed()
        apply_change(view, TopologyChange("switch-down", ("spine0",)))
        assert not view.has_switch("spine0")

    def test_host_lifecycle(self):
        view = paper_testbed()
        apply_change(view, TopologyChange("host-down", ("h0_0",)))
        assert not view.has_host("h0_0")
        apply_change(view, TopologyChange("host-up", ("h0_0", "leaf0", 3)))
        assert view.has_host("h0_0")


class TestReplicatedTopologyStore:
    def test_changes_reach_all_replicas(self):
        store = ReplicatedTopologyStore(["c1", "c2", "c3"], paper_testbed())
        store.append(TopologyChange("link-down", ("leaf0", 1, "spine0", 1)))
        for replica in ("c1", "c2", "c3"):
            assert not store.view_of(replica).has_link("leaf0", 1, "spine0", 1)

    def test_primary_failover_keeps_view(self):
        store = ReplicatedTopologyStore(["c1", "c2", "c3"], paper_testbed())
        store.append(TopologyChange("link-down", ("leaf0", 1, "spine0", 1)))
        old = store.primary
        new = store.fail_primary()
        assert new is not None and new != old
        assert not store.view_of(new).has_link("leaf0", 1, "spine0", 1)
        # The promoted replica keeps serving writes.
        store.append(TopologyChange("link-down", ("leaf1", 1, "spine0", 2)))
        assert not store.view_of(new).has_link("leaf1", 1, "spine0", 2)

    def test_recovered_replica_converges(self):
        store = ReplicatedTopologyStore(["c1", "c2", "c3"], paper_testbed())
        victim = [n for n in store.views if n != store.primary][0]
        store.cluster.nodes[victim].crash()
        store.append(TopologyChange("link-down", ("leaf0", 1, "spine0", 1)))
        store.recover(victim)
        assert not store.view_of(victim).has_link("leaf0", 1, "spine0", 1)
