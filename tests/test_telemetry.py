"""In-band packet statistics tests (Section 8 future work)."""

import pytest

from repro.core.fabric import DumbNetFabric
from repro.core.telemetry import (
    FabricReport,
    StatsSwitch,
    SwitchStatsReply,
    TelemetryCollector,
)
from repro.topology import leaf_spine, paper_testbed


@pytest.fixture
def fabric():
    fab = DumbNetFabric(
        leaf_spine(2, 2, 2, num_ports=16),
        controller_host="h0_0",
        seed=19,
        switch_cls=StatsSwitch,
    )
    fab.adopt_blueprint()
    return fab


class TestStatsSwitch:
    def test_discovery_still_works_through_stats_switches(self):
        fab = DumbNetFabric(
            leaf_spine(2, 2, 2, num_ports=16),
            controller_host="h0_0",
            seed=19,
            switch_cls=StatsSwitch,
        )
        result = fab.bootstrap()
        assert result.view.same_wiring(fab.topology)

    def test_counters_track_traffic(self, fabric):
        fabric.warm_paths([("h0_1", "h1_1")])
        for i in range(10):
            fabric.agents["h0_1"].send_app("h1_1", ("d", i), flow_key="f")
        fabric.run_until_idle()
        leaf0 = fabric.network.switches["leaf0"]
        assert leaf0.forwarded >= 10
        assert sum(leaf0.tx_frames.values()) >= 10

    def test_stats_reply_is_an_id_reply(self):
        reply = SwitchStatsReply(
            switch_id="S", echo=None, counters=(("forwarded", 3),)
        )
        from repro.core.messages import SwitchIDReply

        assert isinstance(reply, SwitchIDReply)
        assert reply.counter("forwarded") == 3
        assert reply.counter("missing") == 0


class TestTelemetryCollector:
    def test_collects_every_switch(self, fabric):
        collector = TelemetryCollector(fabric.controller, fabric.network)
        report = collector.collect()
        assert set(report.rows) == set(fabric.topology.switches)
        assert not report.unreachable

    def test_totals_reflect_traffic(self, fabric):
        fabric.warm_paths([("h0_1", "h1_1")])
        for i in range(20):
            fabric.agents["h0_1"].send_app("h1_1", ("d", i), flow_key="f")
        fabric.run_until_idle()
        report = TelemetryCollector(fabric.controller, fabric.network).collect()
        assert report.total("forwarded") >= 40  # >= 2 switch hops x 20

    def test_hottest_ports_ranked(self, fabric):
        fabric.warm_paths([("h0_1", "h1_1")])
        for i in range(30):
            fabric.agents["h0_1"].send_app("h1_1", ("d", i), flow_key="f")
        fabric.run_until_idle()
        report = TelemetryCollector(fabric.controller, fabric.network).collect()
        hot = report.hottest_ports(top=3)
        assert hot
        counts = [c for _sw, _p, c in hot]
        assert counts == sorted(counts, reverse=True)

    def test_requires_bootstrapped_controller(self):
        fab = DumbNetFabric(
            leaf_spine(2, 2, 2, num_ports=16), controller_host="h0_0"
        )
        with pytest.raises(RuntimeError):
            TelemetryCollector(fab.controller, fab.network)

    def test_plain_switches_report_no_counters(self):
        fab = DumbNetFabric(
            leaf_spine(2, 2, 2, num_ports=16), controller_host="h0_0", seed=3
        )
        fab.adopt_blueprint()
        report = TelemetryCollector(fab.controller, fab.network).collect()
        # Plain DumbSwitches answer the query (they are reachable) but
        # carry no counters payload.
        assert set(report.rows) == set(fab.topology.switches)
        assert all(not counters for counters in report.rows.values())

    def test_counters_monotone_between_polls(self, fabric):
        fabric.warm_paths([("h0_1", "h1_1")])
        collector = TelemetryCollector(fabric.controller, fabric.network)
        first = collector.collect()
        for i in range(10):
            fabric.agents["h0_1"].send_app("h1_1", ("d", i), flow_key="f")
        fabric.run_until_idle()
        second = collector.collect()
        assert second.total("forwarded") > first.total("forwarded")

    def test_down_switch_marked_unreachable_not_stalled(self, fabric):
        """Regression: collect() on a fabric with a down switch -- and
        with live periodic work on the loop -- must return promptly with
        the dead switch in ``unreachable`` instead of draining (or never
        finishing) the rest of the simulation."""
        fabric.warm_paths([("h0_1", "h1_1")])
        fabric.fail_switch("spine1")
        fabric.run(until=fabric.now + 0.01)

        # A self-rescheduling heartbeat: run_until_idle would chase this
        # forever (it never goes idle), which is exactly what a live
        # dashboard polling mid-experiment looks like.
        def heartbeat() -> None:
            fabric.loop.call_after(0.01, heartbeat)

        fabric.loop.call_after(0.0, heartbeat)

        before = fabric.now
        report = TelemetryCollector(fabric.controller, fabric.network).collect()
        assert "spine1" in report.unreachable
        live = set(fabric.topology.switches) - {"spine1"}
        assert live <= set(report.rows)
        # Bounded settle: the clock advanced by the window, not to the
        # end of the experiment, and the heartbeat is still alive.
        assert fabric.now <= before + TelemetryCollector.DEFAULT_SETTLE_S + 1e-9
        assert fabric.loop.pending >= 1

    def test_full_drain_mode_still_available(self, fabric):
        collector = TelemetryCollector(
            fabric.controller, fabric.network, settle_s=None
        )
        report = collector.collect()
        assert set(report.rows) == set(fabric.topology.switches)
        assert fabric.loop.pending == 0
