"""Baseline tests: L2/STP bridges, ECMP, OpenFlow switches."""

import pytest

from repro.baselines import (
    EcmpRouter,
    FlowTableSwitch,
    L2Host,
    SdnController,
    StpBridge,
    equal_cost_paths,
)
from repro.baselines.stp import BLOCKING, FORWARDING
from repro.netsim import Network, Tracer
from repro.topology import fat_tree, leaf_spine, line, paper_testbed, ring


def build_stp_network(topo, hello=0.01, max_age=0.1, forward_delay=0.05):
    tracer = Tracer()

    def make_bridge(name, ports, network):
        return StpBridge(
            name,
            ports,
            network.loop,
            hello_s=hello,
            max_age_s=max_age,
            forward_delay_s=forward_delay,
            tracer=tracer,
        )

    def make_host(name, network):
        return L2Host(name, network.loop, tracer=tracer)

    net = Network(topo, make_bridge, make_host, tracer=tracer)
    for bridge in net.switches.values():
        bridge.start()
    return net


def converge(net, seconds=1.0):
    net.run(until=net.now + seconds)


def drain(net, seconds=0.5):
    """Bounded drain: STP hello timers re-arm forever, so a full
    run-until-idle would spin on the periodic events."""
    net.run(until=net.now + seconds)


class TestStpConvergence:
    def test_single_root_elected(self):
        net = build_stp_network(ring(5))
        converge(net)
        roots = {b.root_id for b in net.switches.values()}
        assert len(roots) == 1

    def test_ring_blocks_exactly_one_port(self):
        net = build_stp_network(ring(5))
        converge(net)
        blocked = [
            (b.name, p)
            for b in net.switches.values()
            for p, state in b.port_state.items()
            if state == BLOCKING and net.topology.peer(b.name, p) is not None
        ]
        # A ring of 5 has one redundant link: exactly one side blocks.
        assert len(blocked) == 1

    def test_tree_has_no_blocked_ports(self):
        net = build_stp_network(line(4))
        converge(net)
        for bridge in net.switches.values():
            for port, state in bridge.port_state.items():
                peer = net.topology.peer(bridge.name, port)
                if peer is not None:
                    assert state == FORWARDING

    def test_end_to_end_delivery_after_convergence(self):
        net = build_stp_network(ring(4))
        converge(net)
        net.hosts["hR0_0"].send_frame("hR2_0", payload="ping")
        drain(net)
        assert any(p == "ping" for _t, _s, p in net.hosts["hR2_0"].delivered)

    def test_learning_avoids_flooding(self):
        net = build_stp_network(line(3))
        converge(net)
        a, b = net.hosts["hL0_0"], net.hosts["hL2_0"]
        a.send_frame("hL2_0", payload="first")
        drain(net)
        b.send_frame("hL0_0", payload="reply")
        drain(net)
        a.send_frame("hL2_0", payload="second")
        drain(net)
        bridge = net.switches["L1"]
        assert bridge.frames_forwarded >= 1  # learned path used

    def test_reconvergence_after_link_failure(self):
        net = build_stp_network(ring(4))
        converge(net)
        # Find the active path's link by cutting a tree link and
        # verifying traffic flows again after reconvergence.
        net.fail_link("R0", 2, "R1", 1)
        converge(net, seconds=1.0)
        net.hosts["hR0_0"].send_frame("hR1_0", payload="rerouted")
        drain(net)
        assert any(
            p == "rerouted" for _t, _s, p in net.hosts["hR1_0"].delivered
        )

    def test_reconvergence_takes_multiple_timers(self):
        """STP recovery needs max-age expiry plus 2x forward delay --
        the structural reason Figure 11(b) shows DumbNet ~5x faster."""
        net = build_stp_network(ring(4), hello=0.01, max_age=0.1, forward_delay=0.05)
        converge(net)
        t0 = net.now
        net.fail_link("R0", 2, "R1", 1)
        net.run(until=t0 + 2.0)
        rec = [
            ev for ev in net.tracer.by_category("stp-port-forwarding") if ev.time > t0
        ]
        assert rec, "no port ever moved to forwarding after the cut"
        recovery = max(ev.time for ev in rec) - t0
        assert recovery >= 2 * 0.05  # at least two forward delays


class TestEcmp:
    def test_equal_cost_paths_fat_tree(self):
        topo = fat_tree(4)
        paths = equal_cost_paths(topo, "edge0_0", "edge1_0")
        assert len(paths) == 4
        lengths = {len(p) for p in paths}
        assert lengths == {5}  # edge-agg-core-agg-edge

    def test_paths_are_real(self):
        topo = fat_tree(4)
        for path in equal_cost_paths(topo, "edge0_0", "edge2_1"):
            for a, b in zip(path, path[1:]):
                assert topo.links_between(a, b)

    def test_router_deterministic_per_flow(self):
        topo = leaf_spine(4, 2, 2, num_ports=32)
        router = EcmpRouter(topo)
        first = router.route("h0_0", "h1_0", flow_key=("tcp", 1234))
        for _ in range(10):
            assert router.route("h0_0", "h1_0", flow_key=("tcp", 1234)) == first

    def test_router_spreads_flows(self):
        topo = leaf_spine(4, 2, 2, num_ports=32)
        router = EcmpRouter(topo)
        chosen = {
            tuple(router.route("h0_0", "h1_0", flow_key=i)) for i in range(64)
        }
        assert len(chosen) >= 3

    def test_unreachable(self):
        topo = leaf_spine(2, 2, 2, num_ports=16)
        router = EcmpRouter(topo)
        assert router.route("h0_0", "h0_0", 1) is not None  # same leaf
        assert equal_cost_paths(topo, "leaf0", "leaf0") == [["leaf0"]]

    def test_limit_respected(self):
        topo = fat_tree(6)
        paths = equal_cost_paths(topo, "edge0_0", "edge1_0", limit=5)
        assert len(paths) == 5


class TestOpenFlowBaseline:
    def _network(self, topo):
        controller_box = {}

        def make_switch(name, ports, network):
            return FlowTableSwitch(name, ports, network.loop)

        def make_host(name, network):
            return L2Host(name, network.loop)

        net = Network(topo, make_switch, make_host)
        controller = SdnController(topo, net.loop)
        for switch in net.switches.values():
            controller.register(switch)
        return net, controller

    def test_miss_install_forward(self):
        net, controller = self._network(paper_testbed())
        net.hosts["h0_0"].send_frame("h4_0", payload="x")
        net.run_until_idle()
        assert any(p == "x" for _t, _s, p in net.hosts["h4_0"].delivered)
        assert controller.packet_ins >= 1
        assert controller.total_rules >= 3  # one per path switch

    def test_second_packet_hits_table(self):
        net, controller = self._network(paper_testbed())
        net.hosts["h0_0"].send_frame("h4_0", payload="a")
        net.run_until_idle()
        ins_before = controller.packet_ins
        net.hosts["h0_0"].send_frame("h4_0", payload="b")
        net.run_until_idle()
        assert controller.packet_ins == ins_before
        assert any(p == "b" for _t, _s, p in net.hosts["h4_0"].delivered)

    def test_state_grows_with_destinations(self):
        """The scaling pain DumbNet removes: switch state grows with
        the number of communicating hosts."""
        net, controller = self._network(paper_testbed())
        targets = ["h1_0", "h2_0", "h3_0", "h4_0"]
        for dst in targets:
            net.hosts["h0_0"].send_frame(dst, payload="x")
        net.run_until_idle()
        assert controller.total_rules >= 2 * len(targets)

    def test_failure_flushes_rules_and_recovers(self):
        net, controller = self._network(paper_testbed())
        net.hosts["h0_0"].send_frame("h4_0", payload="warm")
        net.run_until_idle()
        # Cut whichever spine link leaf0's rule uses.
        leaf0 = net.switches["leaf0"]
        out_port = leaf0.table["h4_0"]
        peer = net.topology.peer("leaf0", out_port)
        net.fail_link("leaf0", out_port, peer.switch, peer.port)
        net.run_until_idle()
        assert "h4_0" not in leaf0.table
        net.hosts["h0_0"].send_frame("h4_0", payload="after")
        net.run_until_idle()
        assert any(p == "after" for _t, _s, p in net.hosts["h4_0"].delivered)

    def test_table_capacity_limit(self):
        net, _controller = self._network(paper_testbed())
        switch = net.switches["leaf0"]
        switch.table_capacity = 2
        from repro.baselines.openflow import FlowRule

        assert switch.install_rule(FlowRule("a", 1))
        assert switch.install_rule(FlowRule("b", 1))
        assert not switch.install_rule(FlowRule("c", 1))
        assert switch.drops_table_full == 1
