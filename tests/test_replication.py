"""Controller replication and failover on a live fabric."""

import pytest

from repro.core.controller import Controller, ControllerConfig
from repro.core.fabric import DumbNetFabric
from repro.core.host_agent import HostAgent
from repro.core.replication import ReplicatedControlPlane, ReplicationError
from repro.netsim import Network
from repro.topology import paper_testbed


def build_plane():
    """A fabric whose first three hosts are controller-capable."""
    topo = paper_testbed()
    controller_hosts = ["h0_0", "h1_0", "h2_0"]
    agents = {}
    tracer_box = {}

    from repro.core.switch import DumbSwitch
    from repro.netsim.trace import Tracer

    tracer = Tracer()

    def make_switch(name, ports, network):
        return DumbSwitch(name, ports, network.loop, tracer=tracer)

    def make_host(name, network):
        if name in controller_hosts:
            agent = Controller(name, network.loop, tracer=tracer)
        else:
            agent = HostAgent(name, network.loop, tracer=tracer)
        agents[name] = agent
        return agent

    network = Network(topo, make_switch, make_host, tracer=tracer)
    primary = agents["h0_0"]
    primary.adopt_view(topo.copy())
    primary.announce_all()
    network.run_until_idle()
    plane = ReplicatedControlPlane(
        network, primary, [agents["h1_0"], agents["h2_0"]]
    )
    return network, agents, plane, tracer


class TestReplicatedControlPlane:
    def test_changes_replicate(self):
        network, agents, plane, _tracer = build_plane()
        network.fail_link("leaf3", 1, "spine0", 4)
        network.run_until_idle()
        for replica in ("h1_0", "h2_0"):
            assert not plane.store.view_of(replica).has_link(
                "leaf3", 1, "spine0", 4
            )

    def test_failover_promotes_standby(self):
        network, agents, plane, _tracer = build_plane()
        network.fail_link("leaf3", 1, "spine0", 4)
        network.run_until_idle()
        new_primary = plane.fail_primary()
        network.run_until_idle()
        assert new_primary.name in ("h1_0", "h2_0")
        assert new_primary.view is not None
        assert not new_primary.view.has_link("leaf3", 1, "spine0", 4)

    def test_hosts_retarget_queries_after_failover(self):
        network, agents, plane, _tracer = build_plane()
        new_primary = plane.fail_primary()
        network.run_until_idle()
        # A host that never talked to anyone now asks for a path: the
        # announcement pointed it at the new controller.
        src = agents["h4_1"]
        assert src.controller == new_primary.name
        src.send_app("h3_2", "post-failover")
        network.run_until_idle()
        assert "post-failover" in [d[2] for d in agents["h3_2"].delivered]

    def test_new_primary_handles_failures(self):
        network, agents, plane, _tracer = build_plane()
        new_primary = plane.fail_primary()
        network.run_until_idle()
        network.fail_link("leaf4", 2, "spine1", 5)
        network.run_until_idle()
        assert not new_primary.view.has_link("leaf4", 2, "spine1", 5)

    def test_planned_failover_keeps_old_primary_as_standby(self):
        network, agents, plane, _tracer = build_plane()
        old = plane.current_primary
        plane.failover()
        network.run_until_idle()
        assert old in plane.standbys
        assert plane.current_primary is not old

    def test_standbys_must_be_controllers(self):
        network, agents, plane, _tracer = build_plane()
        with pytest.raises(ReplicationError):
            ReplicatedControlPlane(
                network, plane.current_primary, [agents["h4_4"]]
            )

    def test_unbootstrapped_primary_rejected(self):
        network, agents, _plane, _tracer = build_plane()
        fresh = Controller("ghost", network.loop)
        with pytest.raises(ReplicationError):
            ReplicatedControlPlane(network, fresh, [])


class TestSerializationRoundTrip:
    def test_blueprint_roundtrip(self):
        from repro.topology import dumps, loads

        topo = paper_testbed()
        clone = loads(dumps(topo))
        assert clone.same_wiring(topo)

    def test_bad_blueprints_rejected(self):
        from repro.topology import TopologyError, topology_from_dict

        with pytest.raises(TopologyError):
            topology_from_dict({"format": 99})
        with pytest.raises(TopologyError):
            topology_from_dict({"format": 1})
        with pytest.raises(TopologyError):
            topology_from_dict(
                {"format": 1, "switches": {"S": 4}, "links": [["S", 1, "T"]]}
            )

    def test_discovered_view_serializes(self):
        from repro.topology import dumps, loads

        fab = DumbNetFabric(paper_testbed(), controller_host="h0_0", seed=2)
        result = fab.bootstrap()
        clone = loads(dumps(result.view))
        assert clone.same_wiring(result.view)


class TestFailoverBugfixes:
    def test_planned_failover_then_crash_succeeds(self):
        """Regression: failover() used to crash the ex-primary's quorum
        node, so a real fail_primary() right after found 2 of 3 nodes
        dead and no electable majority."""
        network, agents, plane, _tracer = build_plane()
        plane.failover()
        network.run_until_idle()
        alive = sum(
            1 for node in plane.store.cluster.nodes.values() if node.alive
        )
        assert alive == 3, "planned failover shrank the quorum"
        new_primary = plane.fail_primary()
        network.run_until_idle()
        assert plane.current_primary is new_primary
        network.fail_link("leaf3", 1, "spine0", 4)
        network.run_until_idle()
        assert not new_primary.view.has_link("leaf3", 1, "spine0", 4)

    def test_promote_trusts_host_device_power_state(self):
        """Regression: _promote read the Controller object's .powered
        while fail_primary powers off network.hosts[name]; when those
        are different objects the view edit and the standby-pool
        decision disagreed (a dark host kept serving as a standby)."""
        network, agents, plane, _tracer = build_plane()
        old = plane.current_primary

        class DarkHost:
            powered = False

        original = network.hosts[old.name]
        network.hosts[old.name] = DarkHost()
        try:
            new_primary = plane.failover()
        finally:
            network.hosts[old.name] = original
        assert old.powered  # the controller object still says "up" ...
        # ... but the device is the source of truth: BOTH decisions
        # must treat the old primary as dead.
        assert old not in plane.standbys
        assert not new_primary.view.has_host(old.name)

    def test_reinstated_ex_primary_promoted_a_second_time(self):
        """An ex-primary that crashed, recovered and was reinstated must
        be promotable again with a caught-up replica view."""
        network, agents, plane, _tracer = build_plane()
        old = plane.current_primary
        plane.fail_primary()
        network.run_until_idle()
        plane.reinstate(old)
        assert old in plane.standbys
        promoted = plane.failover(prefer=old.name)
        network.run_until_idle()
        assert promoted is old
        assert plane.current_primary is old
        network.fail_link("leaf4", 2, "spine1", 5)
        network.run_until_idle()
        assert not old.view.has_link("leaf4", 2, "spine1", 5)

    def test_reinstate_rejects_strangers_and_members(self):
        network, agents, plane, _tracer = build_plane()
        with pytest.raises(ReplicationError):
            plane.reinstate(plane.current_primary)
        stranger = Controller("ghost", network.loop)
        with pytest.raises(ReplicationError):
            plane.reinstate(stranger)


class TestApplyReconciliation:
    def test_divergent_replica_reconverges_with_signal(self):
        """Regression: apply_change silently skipped a committed link-up
        whose ports a divergent replica believed occupied, so that
        replica's view drifted forever with no signal.  Committed
        records are authoritative: the stale occupant is evicted (and
        counted) instead."""
        from repro.consensus.store import ReplicatedTopologyStore
        from repro.core.messages import TopologyChange
        from repro.topology.graph import Topology

        topo = Topology()
        for name in ("s0", "s1", "s2"):
            topo.add_switch(name, 4)
        topo.add_link("s0", 1, "s1", 1)
        store = ReplicatedTopologyStore(["a", "b", "c"], topo)
        # Diverge replica c behind the quorum's back: it believes a
        # stale link occupies the port the committed record needs.
        rogue = store.view_of("c")
        rogue.remove_link("s0", 1, "s1", 1)
        rogue.add_link("s0", 1, "s2", 1)
        store.append(TopologyChange(op="link-up", args=("s0", 1, "s1", 1)))
        leader = store.primary
        for name in ("a", "b", "c"):
            assert store.view_of(name).same_wiring(store.view_of(leader)), name
        assert store.apply_stats["c"]["reconciled"] >= 1
        assert store.total_drops() == 0

    def test_fabric_report_surfaces_replica_drops(self):
        """A committed record that cannot apply at all is counted as
        dropped per replica and surfaced through FabricReport."""
        from repro.core.telemetry import TelemetryCollector

        network, agents, plane, _tracer = build_plane()
        # Diverge h2_0's replica: it already lost the link the quorum
        # is about to commit down, so the record cannot apply there.
        plane.store.view_of("h2_0").remove_link("leaf3", 1, "spine0", 4)
        network.fail_link("leaf3", 1, "spine0", 4)
        network.run_until_idle()
        assert plane.store.apply_stats["h2_0"]["dropped"] == 1
        assert plane.store.total_drops() == 1
        report = TelemetryCollector(plane.current_primary, network).collect()
        assert report.replication["h2_0"]["dropped"] == 1
        assert "DROPPED" in report.summary()
        assert report.as_dict()["replication"]["h2_0"]["dropped"] == 1


class TestStandbyTypeCheck:
    def test_rejection_names_the_offending_type(self):
        """The error must say what was passed, not just refuse."""
        network, agents, plane, _tracer = build_plane()
        with pytest.raises(ReplicationError, match="HostAgent"):
            ReplicatedControlPlane(
                network, plane.current_primary, [agents["h4_4"]]
            )
