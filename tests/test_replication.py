"""Controller replication and failover on a live fabric."""

import pytest

from repro.core.controller import Controller, ControllerConfig
from repro.core.fabric import DumbNetFabric
from repro.core.host_agent import HostAgent
from repro.core.replication import ReplicatedControlPlane, ReplicationError
from repro.netsim import Network
from repro.topology import paper_testbed


def build_plane():
    """A fabric whose first three hosts are controller-capable."""
    topo = paper_testbed()
    controller_hosts = ["h0_0", "h1_0", "h2_0"]
    agents = {}
    tracer_box = {}

    from repro.core.switch import DumbSwitch
    from repro.netsim.trace import Tracer

    tracer = Tracer()

    def make_switch(name, ports, network):
        return DumbSwitch(name, ports, network.loop, tracer=tracer)

    def make_host(name, network):
        if name in controller_hosts:
            agent = Controller(name, network.loop, tracer=tracer)
        else:
            agent = HostAgent(name, network.loop, tracer=tracer)
        agents[name] = agent
        return agent

    network = Network(topo, make_switch, make_host, tracer=tracer)
    primary = agents["h0_0"]
    primary.adopt_view(topo.copy())
    primary.announce_all()
    network.run_until_idle()
    plane = ReplicatedControlPlane(
        network, primary, [agents["h1_0"], agents["h2_0"]]
    )
    return network, agents, plane, tracer


class TestReplicatedControlPlane:
    def test_changes_replicate(self):
        network, agents, plane, _tracer = build_plane()
        network.fail_link("leaf3", 1, "spine0", 4)
        network.run_until_idle()
        for replica in ("h1_0", "h2_0"):
            assert not plane.store.view_of(replica).has_link(
                "leaf3", 1, "spine0", 4
            )

    def test_failover_promotes_standby(self):
        network, agents, plane, _tracer = build_plane()
        network.fail_link("leaf3", 1, "spine0", 4)
        network.run_until_idle()
        new_primary = plane.fail_primary()
        network.run_until_idle()
        assert new_primary.name in ("h1_0", "h2_0")
        assert new_primary.view is not None
        assert not new_primary.view.has_link("leaf3", 1, "spine0", 4)

    def test_hosts_retarget_queries_after_failover(self):
        network, agents, plane, _tracer = build_plane()
        new_primary = plane.fail_primary()
        network.run_until_idle()
        # A host that never talked to anyone now asks for a path: the
        # announcement pointed it at the new controller.
        src = agents["h4_1"]
        assert src.controller == new_primary.name
        src.send_app("h3_2", "post-failover")
        network.run_until_idle()
        assert "post-failover" in [d[2] for d in agents["h3_2"].delivered]

    def test_new_primary_handles_failures(self):
        network, agents, plane, _tracer = build_plane()
        new_primary = plane.fail_primary()
        network.run_until_idle()
        network.fail_link("leaf4", 2, "spine1", 5)
        network.run_until_idle()
        assert not new_primary.view.has_link("leaf4", 2, "spine1", 5)

    def test_planned_failover_keeps_old_primary_as_standby(self):
        network, agents, plane, _tracer = build_plane()
        old = plane.current_primary
        plane.failover()
        network.run_until_idle()
        assert old in plane.standbys
        assert plane.current_primary is not old

    def test_standbys_must_be_controllers(self):
        network, agents, plane, _tracer = build_plane()
        with pytest.raises(ReplicationError):
            ReplicatedControlPlane(
                network, plane.current_primary, [agents["h4_4"]]
            )

    def test_unbootstrapped_primary_rejected(self):
        network, agents, _plane, _tracer = build_plane()
        fresh = Controller("ghost", network.loop)
        with pytest.raises(ReplicationError):
            ReplicatedControlPlane(network, fresh, [])


class TestSerializationRoundTrip:
    def test_blueprint_roundtrip(self):
        from repro.topology import dumps, loads

        topo = paper_testbed()
        clone = loads(dumps(topo))
        assert clone.same_wiring(topo)

    def test_bad_blueprints_rejected(self):
        from repro.topology import TopologyError, topology_from_dict

        with pytest.raises(TopologyError):
            topology_from_dict({"format": 99})
        with pytest.raises(TopologyError):
            topology_from_dict({"format": 1})
        with pytest.raises(TopologyError):
            topology_from_dict(
                {"format": 1, "switches": {"S": 4}, "links": [["S", 1, "T"]]}
            )

    def test_discovered_view_serializes(self):
        from repro.topology import dumps, loads

        fab = DumbNetFabric(paper_testbed(), controller_host="h0_0", seed=2)
        result = fab.bootstrap()
        clone = loads(dumps(result.view))
        assert clone.same_wiring(result.view)


class TestStandbyTypeCheck:
    def test_rejection_names_the_offending_type(self):
        """The error must say what was passed, not just refuse."""
        network, agents, plane, _tracer = build_plane()
        with pytest.raises(ReplicationError, match="HostAgent"):
            ReplicatedControlPlane(
                network, plane.current_primary, [agents["h4_4"]]
            )
