"""Tests for TopoCache and PathTable (Section 5.2)."""

import random

import pytest

from repro.core.messages import PathReply
from repro.core.pathcache import CachedPath, PathTable, TopoCache
from repro.topology import figure1


def make_reply(topo, src, dst, nonce=1, version=1):
    """A PathReply carrying the full topology as the subgraph."""
    edges = tuple(
        (l.a.switch, l.a.port, l.b.switch, l.b.port) for l in topo.links
    )
    src_ref = topo.host_port(src)
    dst_ref = topo.host_port(dst)
    return PathReply(
        nonce=nonce,
        src=src,
        dst=dst,
        found=True,
        src_attachment=(src_ref.switch, src_ref.port),
        dst_attachment=(dst_ref.switch, dst_ref.port),
        edges=edges,
        version=version,
    )


def cached(switches, tags):
    return CachedPath.from_encoding(switches, tags)


class TestTopoCache:
    def test_merge_builds_fragment(self):
        topo = figure1()
        cache = TopoCache("H4")
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        assert cache.knows_host("H5")
        assert cache.attachment("H4") == ("S4", 6)
        assert cache.size_switches == 5

    def test_k_shortest_on_fragment(self):
        topo = figure1()
        cache = TopoCache("H4")
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        paths = cache.k_shortest("H4", "H5", 3)
        assert paths
        assert all(p[0] == "S4" and p[-1] == "S5" for p in paths)
        assert paths[0] in (["S4", "S5"],)

    def test_encode_from_fragment(self):
        topo = figure1()
        cache = TopoCache("H4")
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        path = cache.encode("H4", ["S4", "S5"], "H5")
        assert path.tags == (3, 5)
        assert path.uses("S4", 3)

    def test_port_down_removes_cached_link(self):
        topo = figure1()
        cache = TopoCache("H4")
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        cache.port_down("S4", 3)
        assert cache.k_shortest("H4", "H5", 1)[0] != ["S4", "S5"]

    def test_dead_port_survives_new_merges(self):
        """News can arrive before the path graph that contains the dead
        link; the merge must not resurrect it."""
        topo = figure1()
        cache = TopoCache("H4")
        cache.port_down("S4", 3)
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        fragment_peer = cache.fragment.peer("S4", 3)
        assert fragment_peer is None

    def test_port_up_clears_dead_mark(self):
        cache = TopoCache("H4")
        cache.port_down("S4", 3)
        cache.port_up("S4", 3)
        topo = figure1()
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        assert cache.fragment.peer("S4", 3) is not None

    def test_unknown_host_queries(self):
        cache = TopoCache("H4")
        assert not cache.knows_host("H5")
        assert cache.attachment("H5") is None
        assert cache.k_shortest("H4", "H5", 2) == []


class TestPathTable:
    def test_install_and_lookup(self):
        table = PathTable(rng=random.Random(0))
        path = cached(["S1", "S2"], [1, 5])
        table.install("dst", [path])
        assert table.lookup("dst") == path
        assert table.lookup("other") is None

    def test_flow_stickiness(self):
        table = PathTable(rng=random.Random(0))
        paths = [cached(["A"], [i]) for i in range(1, 5)]
        table.install("dst", paths)
        first = table.lookup("dst", flow_key="flow1")
        for _ in range(20):
            assert table.lookup("dst", flow_key="flow1") == first

    def test_distinct_flows_spread(self):
        table = PathTable(rng=random.Random(0))
        paths = [cached(["A"], [i]) for i in range(1, 5)]
        table.install("dst", paths)
        chosen = {table.lookup("dst", flow_key=f"f{i}").tags for i in range(40)}
        assert len(chosen) > 1

    def test_pin(self):
        table = PathTable(rng=random.Random(0))
        paths = [cached(["A"], [i]) for i in range(1, 4)]
        table.install("dst", paths)
        table.pin("dst", "flow", 2)
        assert table.lookup("dst", flow_key="flow") == paths[2]
        with pytest.raises(KeyError):
            table.pin("dst", "flow", 9)

    def test_invalidate_port_drops_paths(self):
        table = PathTable(rng=random.Random(0))
        good = cached(["S1", "S2"], [1, 5])
        bad = cached(["S1", "S3"], [2, 5])
        table.install("dst", [good, bad])
        dropped = table.invalidate_port("S1", 2)
        assert dropped == 1
        for _ in range(10):
            assert table.lookup("dst") == good

    def test_failover_to_backup(self):
        table = PathTable(rng=random.Random(0))
        primary = cached(["S1", "S2"], [1, 5])
        backup = cached(["S1", "S3", "S2"], [2, 3, 5])
        table.install("dst", [primary], backup=backup)
        table.invalidate_port("S1", 1)
        assert table.lookup("dst", flow_key="f") == backup
        assert table.failovers >= 1

    def test_backup_invalidation(self):
        table = PathTable(rng=random.Random(0))
        backup = cached(["S1", "S3", "S2"], [2, 3, 5])
        table.install("dst", [], backup=backup)
        table.invalidate_port("S3", 3)
        assert table.lookup("dst") is None

    def test_flow_rebinds_after_invalidation(self):
        table = PathTable(rng=random.Random(0))
        a = cached(["S1", "S2"], [1, 5])
        b = cached(["S1", "S3"], [2, 5])
        table.install("dst", [a, b])
        # Bind deterministically, then kill the bound path.
        bound = table.lookup("dst", flow_key="f")
        other = b if bound == a else a
        table.invalidate_port(bound.switches[0], bound.tags[0])
        assert table.lookup("dst", flow_key="f") == other

    def test_size_and_counters(self):
        table = PathTable(rng=random.Random(0))
        table.install("d1", [cached(["A"], [1])], backup=cached(["B"], [2]))
        table.install("d2", [cached(["C"], [3])])
        assert table.size_paths == 3
        table.lookup("d1")
        table.lookup("missing")
        assert table.lookups == 2 and table.hits == 1

    def test_forget(self):
        table = PathTable(rng=random.Random(0))
        table.install("dst", [cached(["A"], [1])])
        table.forget("dst")
        assert table.lookup("dst") is None


class TestHostMigration:
    def test_moved_host_updates_attachment(self):
        """A VM migration re-attaches the host elsewhere; keeping the
        stale attachment would poison every path encoded toward it."""
        topo = figure1()
        cache = TopoCache("H4")
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        assert cache.attachment("H5") == ("S5", 5)
        cache.record_attachment("H5", "S1", 7)
        assert cache.attachment("H5") == ("S1", 7)

    def test_unchanged_attachment_is_stable(self):
        topo = figure1()
        cache = TopoCache("H4")
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        cache.record_attachment("H5", "S5", 5)
        assert cache.attachment("H5") == ("S5", 5)

    def test_migration_to_occupied_port_drops_stale_attachment(self):
        """Moving onto a port the fragment knows is a switch-switch
        link cannot be recorded, but the stale location must still go:
        half-knowledge is worse than a controller round trip."""
        topo = figure1()
        cache = TopoCache("H4")
        cache.merge_reply(make_reply(topo, "H4", "H5"))
        cache.record_attachment("H5", "S4", 3)  # S4-3 <-> S5-1 in use
        assert cache.attachment("H5") is None


class TestBindingRemap:
    def three_paths(self):
        table = PathTable(rng=random.Random(0))
        a = cached(["S1", "S2"], [1, 5])
        b = cached(["S1", "S3"], [2, 5])
        c = cached(["S1", "S4"], [3, 5])
        table.install("dst", [a, b, c])
        return table, a, b, c

    def test_surviving_bindings_keep_their_paths(self):
        table, a, b, c = self.three_paths()
        table.pin("dst", "fa", 0)
        table.pin("dst", "fb", 1)
        table.pin("dst", "fc", 2)
        table.invalidate_port("S1", 2)  # kills b only
        # Flows bound to survivors stay exactly where they were even
        # though the survivors' indices shifted.
        for _ in range(10):
            assert table.lookup("dst", flow_key="fa") == a
            assert table.lookup("dst", flow_key="fc") == c
        assert table.lookup("dst", flow_key="fb") in (a, c)

    def test_failover_counted_only_for_dead_flows(self):
        table, a, b, c = self.three_paths()
        table.pin("dst", "fa", 0)
        table.pin("dst", "fb", 1)
        table.invalidate_port("S1", 2)  # kills b only
        table.lookup("dst", flow_key="fa")
        assert table.failovers == 0  # fa's path survived
        table.lookup("dst", flow_key="fb")
        assert table.failovers == 1

    def test_failover_counted_per_flow_not_per_packet(self):
        table, a, b, c = self.three_paths()
        table.pin("dst", "fb", 1)
        table.invalidate_port("S1", 2)
        for _ in range(20):
            table.lookup("dst", flow_key="fb")
        assert table.failovers == 1  # rebind once, not per lookup

    def test_rebound_flow_is_sticky(self):
        table, a, b, c = self.three_paths()
        table.pin("dst", "fb", 1)
        table.invalidate_port("S1", 2)
        rebound = table.lookup("dst", flow_key="fb")
        for _ in range(20):
            assert table.lookup("dst", flow_key="fb") == rebound

    def test_backup_transition_counted_once_per_flow(self):
        table = PathTable(rng=random.Random(0))
        primary = cached(["S1", "S2"], [1, 5])
        backup = cached(["S1", "S3", "S2"], [2, 3, 5])
        table.install("dst", [primary], backup=backup)
        table.invalidate_port("S1", 1)
        for _ in range(20):
            assert table.lookup("dst", flow_key="f") == backup
        assert table.failovers == 1
        table.lookup("dst", flow_key="g")
        assert table.failovers == 2  # a second flow fails over once

    def test_backup_death_clears_backup_accounting(self):
        table = PathTable(rng=random.Random(0))
        backup = cached(["S1", "S3", "S2"], [2, 3, 5])
        table.install("dst", [], backup=backup)
        assert table.lookup("dst", flow_key="f") == backup
        table.invalidate_port("S3", 3)
        assert table.lookup("dst", flow_key="f") is None
        entry = table.entry("dst")
        assert entry.backup is None and not entry.backup_flows
