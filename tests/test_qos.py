"""Priority-queueing switch tests."""

import pytest

from repro.core.messages import AppData, PortStateNotification
from repro.core.packet import (
    ETHERTYPE_DUMBNET,
    ETHERTYPE_NOTIFY,
    Packet,
    PathTags,
)
from repro.core.qos import PRIORITY_BULK, PRIORITY_CONTROL, PRIORITY_DATA, QosSwitch
from repro.netsim import Channel, Device, EventLoop


class Sink(Device):
    def __init__(self, name, loop):
        super().__init__(name, loop)
        self.packets = []

    def handle_packet(self, port, packet):
        self.packets.append((self.loop.now, packet))


def rig(bandwidth=8e6):
    """QosSwitch with one slow egress (1 ms per 1000-byte frame)."""
    loop = EventLoop()
    switch = QosSwitch("S", 4, loop)
    sink = Sink("sink", loop)
    channel = Channel(loop, bandwidth_bps=bandwidth, latency_s=0.0)
    switch.attach(1, channel.ends[0])
    sink.attach(1, channel.ends[1])
    return loop, switch, sink


def frame(tags, priority=PRIORITY_DATA, label=None):
    return Packet(
        src="x", ethertype=ETHERTYPE_DUMBNET, tags=PathTags(tags),
        payload=AppData(label), payload_bytes=1000, priority=priority,
    )


class TestPriorityScheduling:
    def test_idle_line_passes_straight_through(self):
        loop, switch, sink = rig()
        switch.receive(2, frame([1], label="only"))
        loop.run()
        assert len(sink.packets) == 1
        assert switch.frames_queued == 0

    def test_fifo_within_one_class(self):
        loop, switch, sink = rig()
        for i in range(4):
            switch.receive(2, frame([1], label=i))
        loop.run()
        labels = [p.payload.data for _t, p in sink.packets]
        assert labels == [0, 1, 2, 3]

    def test_high_priority_overtakes_queued_bulk(self):
        loop, switch, sink = rig()
        # Fill the line with bulk, then inject a data-class frame.
        for i in range(5):
            switch.receive(2, frame([1], priority=PRIORITY_BULK, label=f"bulk{i}"))
        switch.receive(2, frame([1], priority=PRIORITY_DATA, label="urgent"))
        loop.run()
        labels = [p.payload.data for _t, p in sink.packets]
        # bulk0 was already on the wire; urgent beats the queued rest.
        assert labels.index("urgent") == 1

    def test_notifications_are_control_class(self):
        loop, switch, sink = rig()
        for i in range(5):
            switch.receive(2, frame([1], label=f"data{i}"))
        note = Packet(
            src="S", ethertype=ETHERTYPE_NOTIFY,
            payload=PortStateNotification("S", 3, False, 1),
            payload_bytes=20, ttl=2,
        )
        switch.receive(3, note)
        loop.run()
        kinds = [
            "notify" if p.ethertype == ETHERTYPE_NOTIFY else "data"
            for _t, p in sink.packets
        ]
        # The notification overtakes every queued data frame.
        assert kinds.index("notify") <= 1

    def test_classify(self):
        assert QosSwitch.classify(frame([1])) == PRIORITY_DATA
        assert QosSwitch.classify(frame([1], priority=PRIORITY_BULK)) == PRIORITY_BULK
        note = Packet(src="s", ethertype=ETHERTYPE_NOTIFY)
        assert QosSwitch.classify(note) == PRIORITY_CONTROL


class TestQueueLimits:
    def test_tail_drop_newcomer_of_worst_class(self):
        loop, switch, sink = rig()
        switch.queue_frames = 3
        for i in range(8):
            switch.receive(2, frame([1], priority=PRIORITY_BULK, label=i))
        loop.run()
        assert switch.frames_dropped_qos > 0
        assert len(sink.packets) < 8

    def test_better_class_evicts_worse(self):
        loop, switch, sink = rig()
        switch.queue_frames = 2
        # Two bulk queued behind one in flight, then a data frame.
        for i in range(3):
            switch.receive(2, frame([1], priority=PRIORITY_BULK, label=f"b{i}"))
        switch.receive(2, frame([1], priority=PRIORITY_DATA, label="keep"))
        loop.run()
        labels = [p.payload.data for _t, p in sink.packets]
        assert "keep" in labels
        assert switch.frames_dropped_qos == 1

    def test_forwarding_semantics_preserved(self):
        """QoS must not alter tag consumption."""
        loop, switch, sink = rig()
        for i in range(3):
            switch.receive(2, frame([1, 9], label=i))
        loop.run()
        assert all(p.tags.remaining == (9,) for _t, p in sink.packets)
