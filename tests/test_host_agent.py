"""Host agent tests: dataplane filtering, caching, queries, probes."""

import pytest

from repro.core.discovery import ProbeSpec
from repro.core.fabric import DumbNetFabric
from repro.core.host_agent import AgentConfig, HostAgent
from repro.core.messages import AppData, ProbeMessage, ProbeReply
from repro.core.packet import ETHERTYPE_DUMBNET, ETHERTYPE_IPV4, Packet, PathTags
from repro.netsim import EventLoop
from repro.topology import figure1, leaf_spine


class TestReceiveFiltering:
    def test_delivers_only_fully_consumed_tags(self):
        loop = EventLoop()
        agent = HostAgent("h", loop)
        good = Packet(src="x", ethertype=ETHERTYPE_DUMBNET, tags=PathTags([]), payload=AppData("ok"))
        agent.handle_packet(1, good)
        assert agent.delivered and agent.delivered[0][2] == "ok"

    def test_drops_leftover_tags(self):
        loop = EventLoop()
        agent = HostAgent("h", loop)
        bad = Packet(src="x", ethertype=ETHERTYPE_DUMBNET, tags=PathTags([3]), payload=AppData("no"))
        agent.handle_packet(1, bad)
        assert not agent.delivered
        assert agent.dropped_invalid == 1

    def test_drops_foreign_ethertype(self):
        loop = EventLoop()
        agent = HostAgent("h", loop)
        agent.handle_packet(1, Packet(src="x", ethertype=ETHERTYPE_IPV4, payload=AppData("no")))
        assert agent.dropped_invalid == 1

    def test_app_receive_callback(self):
        loop = EventLoop()
        agent = HostAgent("h", loop)
        seen = []
        agent.app_receive = lambda src, payload, now: seen.append((src, payload))
        packet = Packet(src="x", ethertype=ETHERTYPE_DUMBNET, tags=PathTags([]), payload=AppData(42))
        agent.handle_packet(1, packet)
        assert seen == [("x", 42)]


class TestProbing:
    def test_responds_to_foreign_probe(self, fig1_fabric):
        h1 = fig1_fabric.agents["H1"]
        # H3 probes H1: route S3 out 1 (to S1) then port 5; reply 1-5...
        h3 = fig1_fabric.agents["H3"]
        nonce = h3.send_probe(ProbeSpec(tags=(1, 5), reply_tags=(1, 5)))
        fig1_fabric.run_until_idle()
        outcome = h3.collect_probe(nonce)
        assert outcome is not None and outcome.kind == "host"
        assert outcome.host == "H1"

    def test_ignores_probe_without_reply_route(self):
        loop = EventLoop()
        agent = HostAgent("h", loop)
        probe = ProbeMessage(nonce=9, origin="other", reply_tags=())
        packet = Packet(src="other", ethertype=ETHERTYPE_DUMBNET, tags=PathTags([]), payload=probe)
        agent.handle_packet(1, packet)
        loop.run()
        assert agent.packets_sent == 0

    def test_unknown_probe_reply_ignored(self):
        loop = EventLoop()
        agent = HostAgent("h", loop)
        reply = ProbeReply(nonce=1234, host="x", is_controller=False)
        packet = Packet(src="x", ethertype=ETHERTYPE_DUMBNET, tags=PathTags([]), payload=reply)
        agent.handle_packet(1, packet)  # must not raise
        assert agent.collect_probe(1234) is None


class TestSendPath:
    def test_cold_send_queues_then_flushes(self, fig1_fabric):
        h1 = fig1_fabric.agents["H1"]
        assert h1.send_app("H5", "first") is False  # no cached path yet
        fig1_fabric.run_until_idle()
        h5 = fig1_fabric.agents["H5"]
        assert [d[2] for d in h5.delivered] == ["first"]

    def test_warm_send_is_immediate(self, fig1_fabric):
        h1 = fig1_fabric.agents["H1"]
        h1.send_app("H5", "a")
        fig1_fabric.run_until_idle()
        assert h1.send_app("H5", "b") is True
        fig1_fabric.run_until_idle()
        h5 = fig1_fabric.agents["H5"]
        assert [d[2] for d in h5.delivered] == ["a", "b"]

    def test_send_to_unknown_host_gives_up(self, fig1_fabric):
        h1 = fig1_fabric.agents["H1"]
        h1.send_app("ghost", "x")
        fig1_fabric.run_until_idle()
        assert h1.path_table.entry("ghost") is None
        assert "ghost" not in h1._pending_sends

    def test_routing_function_override(self, fig1_fabric):
        h4 = fig1_fabric.agents["H4"]
        h4.send_app("H5", "warm")
        fig1_fabric.run_until_idle()
        entry = h4.path_table.entry("H5")
        calls = []

        def pick_last(agent, dst, flow_key):
            calls.append(dst)
            return entry.primaries[-1]

        h4.routing_function = pick_last
        h4.send_app("H5", "routed")
        fig1_fabric.run_until_idle()
        assert calls == ["H5"]

    def test_path_verifier_blocks_bad_route(self, fig1_fabric):
        h4 = fig1_fabric.agents["H4"]
        h4.send_app("H5", "warm")
        fig1_fabric.run_until_idle()
        entry = h4.path_table.entry("H5")
        h4.routing_function = lambda a, d, f: entry.primaries[0]
        h4.path_verifier = lambda path: False
        before = fig1_fabric.agents["H5"].app_delivered
        h4.send_app("H5", "blocked")
        fig1_fabric.run_until_idle()
        # The verifier rejected the app route and no default path was
        # taken through the override (falls back to the path table).
        assert h4.dropped_invalid >= 1

    def test_request_retry_then_give_up(self):
        """With no controller reachable, path requests retry and stop."""
        topo = leaf_spine(2, 2, 2, num_ports=16)
        fabric = DumbNetFabric(topo, controller_host="h0_0", seed=3)
        fabric.adopt_blueprint()
        agent = fabric.agents["h1_0"]
        # Kill the controller silently: queries go nowhere.
        fabric.network.hosts["h0_0"].power_off()
        agent.send_app("h0_1", "x")
        fabric.run_until_idle()
        assert agent.path_table.entry("h0_1") is None
        assert "h0_1" not in agent._path_requests  # gave up after retries
        assert agent.path_queries_sent >= 2  # retried at least once


class TestAnnounce:
    def test_announce_sets_identity(self, fig1_fabric):
        h2 = fig1_fabric.agents["H2"]
        assert h2.controller == "C3"
        assert h2.attachment == ("S4", 5)
        assert h2.tags_to_controller is not None
        assert h2.gossip_neighbors  # overlay installed

    def test_gossip_routes_reach_their_targets(self, fig1_fabric):
        topo = fig1_fabric.topology
        for host, agent in fig1_fabric.agents.items():
            for neighbor, routes in agent.gossip_neighbors.items():
                assert routes, f"{host} -> {neighbor} has no routes"
                for tags in routes:
                    assert (
                        topo.decode_tags(host, list(tags))[-1]
                        == topo.host_port(neighbor).switch
                    )
