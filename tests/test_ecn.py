"""ECN marking + congestion-aware rerouting tests (future-work feature)."""

import pytest

from repro.core.ecn import EcnRerouter, EcnSwitch, install_ecn_rerouting
from repro.core.fabric import DumbNetFabric
from repro.core.messages import AppData
from repro.core.packet import ETHERTYPE_DUMBNET, Packet, PathTags
from repro.netsim import Channel, Device, EventLoop, LinkSpec, Network
from repro.topology import leaf_spine, line


class Sink(Device):
    def __init__(self, name, loop):
        super().__init__(name, loop)
        self.packets = []

    def handle_packet(self, port, packet):
        self.packets.append(packet)


def ecn_rig(bandwidth=8e6, horizon=1e-3):
    """An EcnSwitch with one slow egress channel."""
    loop = EventLoop()
    switch = EcnSwitch("S", 4, loop, mark_horizon_s=horizon)
    sink = Sink("sink", loop)
    channel = Channel(loop, bandwidth_bps=bandwidth, latency_s=0.0)
    switch.attach(1, channel.ends[0])
    sink.attach(1, channel.ends[1])
    return loop, switch, sink


def data_packet(tags):
    return Packet(
        src="x", ethertype=ETHERTYPE_DUMBNET, tags=PathTags(tags),
        payload=AppData("d"), payload_bytes=1000,
    )


class TestEcnSwitch:
    def test_uncongested_packets_unmarked(self):
        loop, switch, sink = ecn_rig()
        switch.receive(2, data_packet([1]))
        loop.run()
        assert sink.packets and not sink.packets[0].ecn_marked
        assert switch.packets_marked == 0

    def test_backlog_marks_packets(self):
        loop, switch, sink = ecn_rig(bandwidth=8e6, horizon=1e-3)
        # 1000-byte frames at 1 ms serialization each: the 3rd+ packet
        # sees a backlog beyond the 1 ms horizon.
        for _ in range(6):
            switch.receive(2, data_packet([1]))
        loop.run()
        marked = [p for p in sink.packets if p.ecn_marked]
        unmarked = [p for p in sink.packets if not p.ecn_marked]
        assert marked and unmarked
        assert switch.packets_marked == len(marked)

    def test_forwarding_semantics_unchanged(self):
        """ECN adds marking only: tags are still consumed identically."""
        loop, switch, sink = ecn_rig()
        switch.receive(2, data_packet([1, 7]))
        loop.run()
        assert sink.packets[0].tags.remaining == (7,)


class TestEcnRerouter:
    @pytest.fixture
    def fabric(self):
        topo = leaf_spine(spines=2, leaves=2, hosts_per_leaf=2, num_ports=16)
        fab = DumbNetFabric(topo, controller_host="h0_0", seed=9)
        fab.adopt_blueprint()
        fab.warm_paths([("h0_1", "h1_1")])
        return fab

    def test_clean_paths_keep_binding(self, fabric):
        agent = fabric.agents["h0_1"]
        router = install_ecn_rerouting(agent)
        first = router(agent, "h1_1", "flow")
        for _ in range(5):
            router.record_delivery(first.tags, marked=False)
            assert router(agent, "h1_1", "flow") == first
        assert router.reroutes == 0

    def test_marks_trigger_reroute(self, fabric):
        agent = fabric.agents["h0_1"]
        router = install_ecn_rerouting(agent, mark_threshold=0.3)
        first = router(agent, "h1_1", "flow")
        for _ in range(20):
            router.record_delivery(first.tags, marked=True)
        moved = router(agent, "h1_1", "flow")
        assert moved.tags != first.tags
        assert router.reroutes == 1

    def test_prefers_lowest_mark_rate(self, fabric):
        agent = fabric.agents["h0_1"]
        router = EcnRerouter(agent)
        entry = agent.path_table.entry("h1_1")
        a, b = entry.primaries[0], entry.primaries[1]
        for _ in range(10):
            router.record_delivery(a.tags, marked=True)
            router.record_delivery(b.tags, marked=False)
        chosen = router(agent, "h1_1", "new-flow")
        assert chosen.tags == b.tags

    def test_uncached_destination_falls_through(self, fabric):
        agent = fabric.agents["h0_1"]
        router = install_ecn_rerouting(agent)
        assert router(agent, "nowhere", "f") is None

    def test_mark_rate_window(self, fabric):
        agent = fabric.agents["h0_1"]
        router = EcnRerouter(agent, window=4)
        tags = (1, 2, 3)
        for marked in (True, True, True, True, False, False, False, False):
            router.record_delivery(tags, marked)
        assert router.mark_rate(tags) == 0.0  # old marks aged out


class TestEndToEndCongestionAvoidance:
    def test_marks_flow_back_and_shift_traffic(self):
        """Full loop: an EcnSwitch fabric, receiver echoes mark bits,
        sender's rerouter drains traffic off the congested spine."""
        topo = leaf_spine(spines=2, leaves=2, hosts_per_leaf=2, num_ports=16)
        # Slow fabric so backlogs build: 8 Mbps links.
        spec = LinkSpec(bandwidth_bps=8e6, latency_s=1e-6)

        fab = DumbNetFabric(topo, controller_host="h0_0", seed=4,
                            link_spec=spec, host_link_spec=spec)
        # Swap the switches for EcnSwitches by rebuilding devices is
        # invasive; instead verify the marking path on the rig above and
        # exercise the host loop with synthetic feedback here.
        fab.adopt_blueprint()
        fab.warm_paths([("h0_1", "h1_1")])
        agent = fab.agents["h0_1"]
        router = install_ecn_rerouting(agent, mark_threshold=0.25)
        used = []
        original = agent.send_tagged

        def spy(tags, payload, payload_bytes=0, dst=""):
            if dst == "h1_1":
                used.append(tuple(tags))
            return original(tags, payload, payload_bytes, dst)

        agent.send_tagged = spy
        # Phase 1: congestion-free, flow sticks to one path.
        for i in range(5):
            agent.send_app("h1_1", ("d", i), flow_key="f")
            router.record_delivery(used[-1], marked=False)
        assert len(set(used)) == 1
        congested = used[-1]
        # Phase 2: the path congests; marks accumulate; flow moves.
        for i in range(10):
            agent.send_app("h1_1", ("d", i), flow_key="f")
            router.record_delivery(used[-1], marked=used[-1] == congested)
        fab.run_until_idle()
        assert used[-1] != congested
