"""Figure 8(a): topology discovery time vs network size.

Paper series: fat-tree and cube topologies (controller at the cube's
corner or center), 64-port switches, up to ~500 switches; discovery
finishes within ~70 s at 500 switches, time grows linearly with switch
count, and topology/controller placement are secondary effects.

The discovery algorithm runs unmodified over the oracle transport,
which counts every probing message exactly and charges the calibrated
per-message controller cost (Section "Substitutions" in DESIGN.md).
The testbed point ("3~5 seconds for 7 switches / 27 hosts" in Section
7.2.1, run packet-by-packet in the emulator) is reported alongside.
"""

import pytest

from repro.analysis import render_table
from repro.core.discovery import OracleProbeTransport, discover
from repro.core.fabric import DumbNetFabric
from repro.topology import (
    center_switch,
    corner_switch,
    cube,
    fat_tree,
    paper_testbed,
)

from _util import publish

#: 64 ports everywhere, like the paper's sweep.
PORTS = 64

#: (label, builder) -> builder(n) returns (topology, origin host).
def build_fat_tree(target):
    k = 2
    while 5 * k * k // 4 < target:
        k += 2
    topo = fat_tree(k, hosts_per_edge=1, num_ports=PORTS)
    return topo, topo.hosts[0]


def build_cube(target, placement):
    side = 2
    while side ** 3 < target:
        side += 1
    dims = [side, side, side]
    topo = cube(dims, hosts_per_switch=1, num_ports=PORTS)
    anchor = corner_switch(dims) if placement == "corner" else center_switch(dims)
    origin = topo.hosts_on(anchor)[0]
    return topo, origin


SERIES = {
    "FatTree": lambda n: build_fat_tree(n),
    "Cube-corner": lambda n: build_cube(n, "corner"),
    "Cube-center": lambda n: build_cube(n, "center"),
}

SIZES = (20, 45, 80, 125, 180)


def collect_series():
    rows = []
    for label, builder in SERIES.items():
        seen = set()
        for size in SIZES:
            topo, origin = builder(size)
            if len(topo.switches) in seen:
                continue  # two targets snapped to the same instance
            seen.add(len(topo.switches))
            transport = OracleProbeTransport(topo, origin)
            result = discover(transport, origin)
            assert result.view.same_wiring(topo)
            rows.append(
                (label, len(topo.switches), result.stats.probes_sent,
                 result.stats.elapsed_s)
            )
    return rows


def test_fig8a_discovery_scale(benchmark):
    rows = benchmark.pedantic(collect_series, rounds=1, iterations=1)

    # The emulated testbed point, packet by packet.
    import time as _time

    fabric = DumbNetFabric(paper_testbed(), controller_host="h0_0", seed=1)
    wall_start = _time.perf_counter()
    result = fabric.bootstrap()
    wall = _time.perf_counter() - wall_start
    testbed_time = result.stats.elapsed_s

    table_rows = [
        (label, n, probes, f"{seconds:.2f}")
        for label, n, probes, seconds in rows
    ]
    table_rows.append(
        ("Testbed (emulated)", 7, result.stats.probes_sent, f"{testbed_time:.3f}")
    )
    text = render_table(
        ["Series", "Switches", "Probe msgs", "Modeled time (s)"],
        table_rows,
        title=(
            "Figure 8(a): discovery time vs #switches (64-port switches).\n"
            "Paper: <= 70 s at 500 switches, linear in N, placement secondary.\n"
            "Linear fit projects the paper-scale point below."
        ),
    )

    # Linear projection to the paper's 500-switch point per series.
    projections = []
    for label in SERIES:
        pts = [(n, t) for l, n, _p, t in rows if l == label]
        n_mean = sum(n for n, _t in pts) / len(pts)
        t_mean = sum(t for _n, t in pts) / len(pts)
        slope = sum((n - n_mean) * (t - t_mean) for n, t in pts) / sum(
            (n - n_mean) ** 2 for n, _t in pts
        )
        intercept = t_mean - slope * n_mean
        projections.append((label, f"{slope * 500 + intercept:.1f}"))
    text += "\n\n" + render_table(
        ["Series", "Projected time at 500 switches (s)"],
        projections,
        title="Projection (paper reports <= ~70 s)",
    )
    # Emulator throughput for the packet-by-packet point (the scale
    # sweep uses the oracle transport, which runs no events); full
    # hot-path numbers live in BENCH_netsim.json.
    text += (
        f"\n\nEmulated testbed point: {fabric.loop.events_run} events "
        f"in {wall:.2f}s wall ({fabric.loop.events_run / wall:,.0f} events/s)"
    )
    publish("fig8a_discovery_scale", text)

    # Shape checks: linearity in N (probes scale ~ with switches).
    for label in SERIES:
        pts = sorted((n, p) for l, n, p, _t in rows if l == label)
        (n0, p0), (n1, p1) = pts[0], pts[-1]
        ratio = (p1 / p0) / (n1 / n0)
        assert 0.5 < ratio < 2.0, f"{label}: probes not ~linear in N"
    # Placement is secondary: corner vs center within 25%.
    corner = {n: t for l, n, _p, t in rows if l == "Cube-corner"}
    center = {n: t for l, n, _p, t in rows if l == "Cube-center"}
    for n in corner:
        if n in center:
            assert abs(corner[n] - center[n]) / max(corner[n], center[n]) < 0.25
    # Testbed magnitude: single-digit seconds (paper: 3-5 s).
    assert 0.05 < testbed_time < 10
