"""Figure 13: HiBench task durations on the testbed topology.

Paper: five HiBench tasks (Aggregation, Join, Pagerank, Terasort,
Wordcount) on the 27-server leaf-spine testbed with spine ports limited
to 500 Mbps; flowlet TE enabled.  "DumbNet outperforms conventional
network in all the tasks.  Flowlet TE plays an important role...  the
performance becomes much worse in the single-path setting."  Series:
DumbNet (flowlet TE) < No-op DPDK (kernel ECMP) < DumbNet single path.

Flow-level reproduction: the same task DAGs run under three path
policies over the fluid simulator -- flowlet-style rebalancing
(DumbNet), static flow hashing (the conventional-stack ECMP behaviour),
and a single fixed shortest path (DumbNet without TE).
"""

import os
import sys

if __name__ == "__main__":  # standalone CLI: repo src + sibling _util
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    sys.path.insert(0, os.path.dirname(__file__))

import pytest

from repro.analysis import render_table
from repro.topology import paper_testbed
from repro.workloads import (
    HIBENCH_TASKS,
    HiBenchWorkload,
    Scenario,
    legacy_task_rng,
    run_scenario,
)

from _util import publish

SPINE_PORT_BPS = 500e6  # "we limit spine switch port speed to 500 Mbps"
#: Shuffle volume multiplier: sized so network time lands in the tens
#: of seconds (the paper's 50-250 s durations include compute time,
#: which a network simulator does not model).
TASK_SCALE = 4.0

#: Series name -> (TE mechanism, mechanism options).  The same names
#: :func:`repro.core.te.make_flow_policy` resolves, so the bench can no
#: longer drift from what "flowlet" means elsewhere.
POLICIES = {
    "DumbNet": ("flowlet", {"k": 4}),
    "DumbNet Single Path": ("single", {}),
    "No-op DPDK": ("ecmp", {"k": 2, "seed": 7}),
}

#: The seed the legacy ``hibench_task(..., seed=11)`` call used; fed
#: through :func:`repro.workloads.legacy_task_rng` so the migrated
#: matrix replays the exact same task DAGs.
TASK_SEED = 11


def run_matrix(engine="fluid", roi=None, tasks=None, scale=TASK_SCALE):
    """Task-duration matrix across the three path policies.

    One :func:`repro.workloads.run_scenario` call per cell;
    ``engine``/``roi`` select the dataplane fidelity (the default is
    the plain fluid simulator, unchanged).
    """
    durations = {}
    for policy_name, (te, te_kwargs) in POLICIES.items():
        for task_name in tasks or HIBENCH_TASKS:
            scenario = Scenario(
                HiBenchWorkload(task_name, scale=scale),
                te=te,
                engine=engine,
                topology=paper_testbed,
                te_kwargs=te_kwargs,
                link_bps=10e9,
                host_bps=10e9,
                switch_overrides={
                    "spine0": SPINE_PORT_BPS,
                    "spine1": SPINE_PORT_BPS,
                },
                roi=roi,
                rebalance_interval_s=0.05,
            )
            run = run_scenario(scenario, rng=legacy_task_rng(TASK_SEED, task_name))
            durations[(policy_name, task_name)] = run.result.duration_s
    return durations


def test_fig13_hibench(benchmark):
    durations = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = []
    for task in HIBENCH_TASKS:
        rows.append(
            (task,)
            + tuple(
                f"{durations[(policy, task)]:.1f}" for policy in POLICIES
            )
        )
    text = render_table(
        ["Task"] + list(POLICIES),
        rows,
        title=(
            "Figure 13: HiBench-analogue task duration (s), testbed "
            "topology, 500 Mbps spine ports.\n"
            "Paper ordering: DumbNet (flowlet TE) fastest, single path slowest."
        ),
    )
    publish("fig13_hibench", text)

    for task in HIBENCH_TASKS:
        dumbnet = durations[("DumbNet", task)]
        single = durations[("DumbNet Single Path", task)]
        ecmp = durations[("No-op DPDK", task)]
        # DumbNet with flowlet TE beats both alternatives.
        assert dumbnet <= ecmp * 1.02, f"{task}: TE slower than ECMP"
        assert dumbnet < single, f"{task}: TE slower than single path"
        # Single path is the worst configuration.
        assert single >= ecmp * 0.98, f"{task}: single path beat ECMP"


def main(argv=None) -> int:
    import argparse
    import time

    from repro.hybrid import RegionOfInterest

    parser = argparse.ArgumentParser(
        description="Figure 13 HiBench-analogue task durations"
    )
    parser.add_argument(
        "--engine", choices=("packet", "fluid", "hybrid"), default="fluid",
        help="dataplane fidelity (packet = everything promoted)",
    )
    parser.add_argument(
        "--roi-host", action="append", default=None, metavar="HOST",
        help="hybrid: promote flows touching HOST (repeatable; "
        "default: first testbed host)",
    )
    parser.add_argument(
        "--task", action="append", default=None, choices=list(HIBENCH_TASKS),
        help="run only these tasks (repeatable; default: all)",
    )
    parser.add_argument(
        "--scale", type=float, default=TASK_SCALE,
        help="shuffle volume multiplier (default %(default)s)",
    )
    opts = parser.parse_args(argv)
    roi = None
    if opts.engine == "hybrid":
        hosts = opts.roi_host or [paper_testbed().hosts[0]]
        roi = RegionOfInterest.of_hosts(*hosts)
    t0 = time.perf_counter()
    durations = run_matrix(opts.engine, roi, tasks=opts.task, scale=opts.scale)
    wall = time.perf_counter() - t0
    for (policy, task), duration in sorted(durations.items()):
        print(f"[{opts.engine}] {policy:20s} {task:12s} {duration:8.2f}s")
    print(f"wall {wall:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
