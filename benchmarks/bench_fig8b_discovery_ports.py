"""Figure 8(b): discovery time vs per-switch port count.

Paper setup: a cube topology with the topology and link count held
constant while the per-switch port count varies; discovery time
"roughly follows a quadratic trend", consistent with the O(N * P^2)
probe complexity of Section 4.1.

The paper uses an 8x8x8 cube; we run the same experiment on a 4x4x4
cube (the oracle transport walks every probe individually, and the
quadratic exponent is port-count behaviour, not switch-count
behaviour -- the N factor is Figure 8(a)'s axis).
"""

import pytest

from repro.analysis import render_table
from repro.core.discovery import OracleProbeTransport, discover
from repro.topology import cube

from _util import publish

DIMS = [4, 4, 4]
PORT_SWEEP = (8, 16, 24, 32, 48)


def run_sweep():
    rows = []
    for ports in PORT_SWEEP:
        topo = cube(DIMS, hosts_per_switch=1, num_ports=ports)
        origin = topo.hosts[0]
        transport = OracleProbeTransport(topo, origin)
        result = discover(transport, origin)
        assert result.view.same_wiring(topo)
        rows.append((ports, transport.probes_sent, result.stats.elapsed_s))
    return rows


def quadratic_exponent(rows):
    """Log-log slope of time vs ports between sweep endpoints."""
    import math

    (p0, _m0, t0), (p1, _m1, t1) = rows[0], rows[-1]
    return math.log(t1 / t0) / math.log(p1 / p0)


def test_fig8b_discovery_vs_ports(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    exponent = quadratic_exponent(rows)
    text = render_table(
        ["Ports/switch", "Probe msgs", "Modeled time (s)"],
        [(p, m, f"{t:.3f}") for p, m, t in rows],
        title=(
            f"Figure 8(b): discovery vs port density on a {DIMS[0]}^3 cube "
            "(links held constant).\n"
            "Paper: time follows a quadratic trend in P."
        ),
    )
    text += f"\n\nlog-log exponent across the sweep: {exponent:.2f} (paper: ~2)"
    publish("fig8b_discovery_ports", text)

    # The quadratic shape is the claim.
    assert 1.6 < exponent < 2.3
    # Time strictly increases with port count.
    times = [t for _p, _m, t in rows]
    assert times == sorted(times)
