"""Figure 12: path-graph size vs epsilon, 10x10x10 cube, s=2.

Paper: "we emulate a path graph with a 10x10x10 cube topology.  We fix
the parameter s at 2... randomly pick primary paths of different
length... for longer paths, a larger epsilon results in lots of extra
caching...  For shorter paths, even with a large epsilon, the cache
size is still reasonable."  Series: path lengths {2, 5, 10, 15} over
epsilon choices (the paper's x-axis runs 0..4-ish, y up to ~150
switches).
"""

import random

import pytest

from repro.analysis import render_table
from repro.core.pathgraph import build_path_graph
from repro.topology import cube

from _util import publish

S_PARAM = 2
EPSILONS = (0, 1, 2, 3, 4)
PATH_LENGTHS = (2, 5, 10, 15)
SAMPLES_PER_LENGTH = 3


def pick_pair_at_distance(topo, rng, hops, dist_cache=None):
    """A random switch pair exactly ``hops`` apart.

    ``dist_cache`` memoizes the per-source distance map: the grid
    resamples sources across lengths, and one BFS over a 1000-switch
    cube per retry dominated the whole benchmark's setup time.
    """
    switches = topo.switches
    for _ in range(500):
        src = rng.choice(switches)
        if dist_cache is None:
            dist = topo.switch_distances(src)
        else:
            dist = dist_cache.get(src)
            if dist is None:
                dist = dist_cache[src] = topo.switch_distances(src)
        candidates = [sw for sw, d in dist.items() if d == hops]
        if candidates:
            return src, rng.choice(candidates)
    raise RuntimeError(f"no pair at distance {hops}")


def run_grid():
    topo = cube([10, 10, 10], hosts_per_switch=1, num_ports=8)
    rng = random.Random(2024)
    dist_cache = {}
    grid = {}
    for length in PATH_LENGTHS:
        pairs = [
            pick_pair_at_distance(topo, rng, length, dist_cache)
            for _ in range(SAMPLES_PER_LENGTH)
        ]
        for eps in EPSILONS:
            sizes = []
            for src, dst in pairs:
                graph = build_path_graph(topo, src, dst, s=S_PARAM, epsilon=eps, rng=rng)
                sizes.append(graph.size)
            grid[(length, eps)] = sum(sizes) / len(sizes)
    return grid


def test_fig12_pathgraph_size(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for length in PATH_LENGTHS:
        rows.append(
            (f"len={length}",)
            + tuple(f"{grid[(length, eps)]:.0f}" for eps in EPSILONS)
        )
    text = render_table(
        ["Primary path"] + [f"eps={e}" for e in EPSILONS],
        rows,
        title=(
            "Figure 12: mean path-graph size (switches cached) on a "
            "10x10x10 cube, s=2.\n"
            "Paper: size grows with epsilon, steeply for long paths, "
            "modestly for short ones."
        ),
    )
    publish("fig12_pathgraph_size", text)

    # Monotone in epsilon for every length.
    for length in PATH_LENGTHS:
        series = [grid[(length, eps)] for eps in EPSILONS]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
    # Longer primaries cache more, at every epsilon.
    for eps in EPSILONS:
        assert grid[(2, eps)] < grid[(15, eps)]
    # Short paths stay cheap even at the largest epsilon (paper's
    # "still reasonable"): far below the 1000-switch topology.
    assert grid[(2, EPSILONS[-1])] < 60
    # Long paths at a large epsilon blow up into serious caching.
    assert grid[(15, EPSILONS[-1])] > 2 * grid[(15, 0)]
