"""Partitioned-simulation benchmark: fig8a-class discovery, serial vs
partitioned workers.

Standalone (not a pytest bench -- CI runs it directly):

    PYTHONPATH=src python benchmarks/bench_partition.py [--smoke]

The scenario is the Figure 8(a) 500-switch discovery bootstrap (cube
(10, 10, 5), 64-port switches, seed 1) run three ways on the *same*
physics -- a uniform 25 us switch-switch link latency, so the serial
and partitioned runs simulate the identical fabric and the conservative
lookahead window is 25 us rather than the 1 us default (fewer, fatter
coordination rounds):

* serial          -- today's single event loop,
* inline x4       -- 4 partition loops, one process (coordination
                     overhead, no parallelism; the determinism oracle),
* fork x4         -- 4 partition loops, 3 forked workers + the parent.

Equivalence is always enforced: all three must discover byte-identical
wiring, and fork must reproduce inline's exact window/message schedule.
The >=2x wall-time floor against serial applies to the fork run and is
enforced only when the host actually has >= 4 usable cores -- on a
smaller machine the floor physically cannot hold, so the payload
records ``floor.enforced: false`` with the measured numbers and the
reason instead of a vacuous pass.

Results land in ``BENCH_partition.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.fabric import DumbNetFabric
from repro.netsim.network import LinkSpec
from repro.topology import cube

from _util import REPO_ROOT, publish_json

REQUIRED_SPEEDUP = 2.0
WORKERS = 4

FULL = {"dims": (10, 10, 5), "num_ports": 64, "switches": 500}
SMOKE = {"dims": (5, 4, 3), "num_ports": 16, "switches": 60}

#: Switch-switch latency for every link (uniform -- the partitioned and
#: serial runs simulate the same fabric).  This is also the lookahead.
LINK_LATENCY_S = 25e-6


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def view_digest(topology) -> str:
    import hashlib

    rows = sorted(str(link) for link in topology.links)
    rows += sorted(f"{h}@{topology.host_port(h)}" for h in topology.hosts)
    return hashlib.sha256("\n".join(rows).encode()).hexdigest()


def run_scenario(scenario: dict, partitions: int, mode: str) -> dict:
    topo = cube(list(scenario["dims"]), hosts_per_switch=1,
                num_ports=scenario["num_ports"])
    assert len(topo.switches) == scenario["switches"]
    spec = LinkSpec(latency_s=LINK_LATENCY_S)
    kwargs = {}
    if partitions > 1:
        kwargs = {"partitions": partitions, "partition_mode": mode,
                  "boundary_link_spec": spec}
    fabric = DumbNetFabric(
        topo, controller_host=topo.hosts[0], seed=1, link_spec=spec, **kwargs
    )
    t0 = time.perf_counter()
    result = fabric.bootstrap()
    wall = time.perf_counter() - t0
    row = {
        "partitions": partitions,
        "mode": "serial" if partitions == 1 else mode,
        "wall_s": round(wall, 3),
        "modeled_s": round(result.stats.elapsed_s, 6),
        "probes": result.stats.probes_sent,
        "view_digest": view_digest(result.view),
    }
    report = fabric.partition_report()
    if report is not None:
        row["rounds"] = report["rounds"]
        row["messages"] = report["messages"]
        row["boundary_links"] = report["boundary_links"]
        row["lookahead_s"] = report["lookahead_s"]
    fabric.shutdown()
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: 60-switch scenario, 2 partitions, correctness only",
    )
    opts = parser.parse_args(argv)

    scenario = SMOKE if opts.smoke else FULL
    workers = 2 if opts.smoke else WORKERS
    cores = usable_cores()

    serial = run_scenario(scenario, 1, "serial")
    print(f"[serial]   {serial}")
    inline = run_scenario(scenario, workers, "inline")
    print(f"[inline{workers}]  {inline}")
    fork = run_scenario(scenario, workers, "fork")
    print(f"[fork{workers}]    {fork}")

    floor_enforced = cores >= workers and not opts.smoke
    payload = {
        "schema": "bench-partition/1",
        "mode": "smoke" if opts.smoke else "full",
        "cpu_count": cores,
        "scenario": {
            "switches": scenario["switches"],
            "dims": list(scenario["dims"]),
            "num_ports": scenario["num_ports"],
            "seed": 1,
            "link_latency_s": LINK_LATENCY_S,
            "workers": workers,
        },
        "serial": serial,
        "inline": inline,
        "fork": fork,
        "speedup_inline": round(serial["wall_s"] / inline["wall_s"], 3),
        "speedup_fork": round(serial["wall_s"] / fork["wall_s"], 3),
        "floor": {
            "required_speedup": REQUIRED_SPEEDUP,
            "enforced": floor_enforced,
            "reason": (
                "enforced: host has enough cores for the worker count"
                if floor_enforced else
                f"not enforced: host exposes {cores} usable core(s) for "
                f"{workers} workers"
                + ("; smoke mode checks correctness only" if opts.smoke else "")
            ),
        },
    }
    publish_json(
        "bench_partition", payload,
        path=os.path.join(REPO_ROOT, "BENCH_partition.json"),
    )

    # Equivalence gates run in every mode: the parallel backend is only
    # admissible while it reproduces the serial simulator's answers.
    if not (serial["view_digest"] == inline["view_digest"] == fork["view_digest"]):
        print("FAIL: partitioned discovery diverged from serial wiring")
        return 1
    if serial["probes"] != inline["probes"] or serial["probes"] != fork["probes"]:
        print("FAIL: probe counts diverged across backends")
        return 1
    if (inline["rounds"], inline["messages"]) != (fork["rounds"], fork["messages"]):
        print("FAIL: fork coordinator diverged from the inline schedule")
        return 1
    if floor_enforced and payload["speedup_fork"] < REQUIRED_SPEEDUP:
        print(f"FAIL: fork x{workers} speedup {payload['speedup_fork']}x "
              f"below the {REQUIRED_SPEEDUP}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
