"""Workload-suite TE bake-off: the (workload x TE x engine) scorecard.

Standalone (not a pytest bench -- CI runs it directly):

    PYTHONPATH=src python benchmarks/bench_workloads.py [--smoke]

Every cell is one :func:`repro.workloads.run_scenario` call: a
canonical workload family (websearch / datamining trace replay, incast
fan-in sweep, elephant+mice mix, storage write fan-out, tenant churn)
under one TE mechanism (flowlet, ECMP, pHost-style spraying, ECN-aware
rerouting) on one dataplane engine (fluid / hybrid / packet), reduced
to FCT p50/p99, goodput, path-table pressure and reroute counts.

Gates run in every mode:

* **schema** -- every cell carries the full metric set;
* **coverage** -- >= 5 workload families x >= 4 TE mechanisms;
* **determinism** -- a re-run of the fluid slice under the same pinned
  seed must reproduce its cells byte for byte (the Workload contract:
  all randomness flows through one seeded generator);
* **spray shape** -- spray cells carry k subflows per request.

``--smoke`` shrinks the grid (fluid everywhere, the incast family on
all three engines) for CI; full mode runs all engines on every family.
Results land in ``BENCH_workloads.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.topology import leaf_spine
from repro.workloads import (
    ENGINES,
    Scenario,
    ScorecardReport,
    TE_MECHANISMS,
    canonical_suite,
    run_scenario,
)

from _util import REPO_ROOT, publish_json

SEED = 3

#: Spine-link rate.  Hosts keep 10G NICs, so the 2x2.5G core is the
#: bottleneck for inter-leaf traffic -- without oversubscription every
#: TE mechanism saturates the same host NICs and the columns collapse
#: to one number.
CORE_LINK_BPS = 2.5e9

REQUIRED_CELL_KEYS = (
    "workload", "te", "engine", "seed", "requests", "flows",
    "stalled_flows", "duration_s", "fct_p50_s", "fct_p99_s", "fct_mean_s",
    "goodput_bps", "path_table_entries", "path_table_pairs",
    "max_paths_per_pair", "reroutes", "subflows",
)


def grid_topology():
    """20 hosts, 2x2 leaf-spine: enough for the fan-in-16 incast round
    and the four-slice tenant partition, small enough for packet cells."""
    return leaf_spine(spines=2, leaves=2, hosts_per_leaf=10, num_ports=64)


def run_cell(workload, te: str, engine: str) -> dict:
    scenario = Scenario(
        workload, te=te, engine=engine, topology=grid_topology,
        link_bps=CORE_LINK_BPS, host_bps=10e9, seed=SEED,
    )
    return run_scenario(scenario).cell()


def build_scorecard(smoke: bool) -> ScorecardReport:
    suite = canonical_suite(scale=0.5 if smoke else 1.0)
    report = ScorecardReport(
        meta={
            "seed": SEED,
            "mode": "smoke" if smoke else "full",
            "topology": "leaf_spine(2 spines, 2 leaves, 10 hosts/leaf)",
            "core_link_bps": CORE_LINK_BPS,
            "host_bps": 10e9,
            "scale": 0.5 if smoke else 1.0,
        }
    )
    for workload in suite:
        for te in TE_MECHANISMS:
            # Smoke keeps CI short: fluid everywhere, the engine
            # dimension exercised on the incast family only.
            engines = (
                ("fluid",) if smoke and workload.name != "incast" else ENGINES
            )
            for engine in engines:
                t0 = time.perf_counter()
                cell = run_cell(workload, te, engine)
                wall = time.perf_counter() - t0
                print(
                    f"[{workload.name:>13s} {te:>7s} {engine:>6s}] "
                    f"p99={cell['fct_p99_s']:.5f}s "
                    f"goodput={cell['goodput_bps'] / 1e9:6.2f} Gbps "
                    f"entries={cell['path_table_entries']:4d} "
                    f"wall={wall:5.2f}s"
                )
                report.add(cell)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: reduced grid, gates only",
    )
    opts = parser.parse_args(argv)
    failures = []

    report = build_scorecard(opts.smoke)
    payload = report.as_dict()

    # Gate: schema -- every cell carries the full metric set.
    for workload, by_te in payload["cells"].items():
        for te, by_engine in by_te.items():
            for engine, cell in by_engine.items():
                missing = [k for k in REQUIRED_CELL_KEYS if k not in cell]
                if missing:
                    failures.append(
                        f"cell {workload}/{te}/{engine} missing {missing}"
                    )

    # Gate: coverage -- the bake-off's contract.
    if len(payload["workloads"]) < 5:
        failures.append(
            f"only {len(payload['workloads'])} workload families "
            f"({payload['workloads']}); need >= 5"
        )
    if len(payload["mechanisms"]) < 4:
        failures.append(
            f"only {len(payload['mechanisms'])} TE mechanisms "
            f"({payload['mechanisms']}); need >= 4"
        )

    # Gate: spray shape -- k subflows per request at the fluid level.
    for workload, by_te in payload["cells"].items():
        spray = by_te.get("spray", {}).get("fluid")
        if spray and spray["flows"] != spray["subflows"] * (
            spray["flows"] // spray["subflows"]
        ):
            failures.append(f"{workload}/spray: flow count not a multiple of k")

    # Gate: determinism -- the fluid slice must reproduce byte for byte.
    for workload, by_te in payload["cells"].items():
        wl = next(
            w for w in canonical_suite(scale=0.5 if opts.smoke else 1.0)
            if w.name == workload
        )
        for te, by_engine in by_te.items():
            if "fluid" not in by_engine:
                continue
            rerun = run_cell(wl, te, "fluid")
            if json.dumps(rerun, sort_keys=True) != json.dumps(
                by_engine["fluid"], sort_keys=True
            ):
                failures.append(
                    f"{workload}/{te}/fluid not deterministic under seed {SEED}"
                )
            break  # one mechanism per family keeps the gate cheap

    print()
    print(report.summary())
    publish_json(
        "bench_workloads", payload,
        path=os.path.join(REPO_ROOT, "BENCH_workloads.json"),
    )

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
