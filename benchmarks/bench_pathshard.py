"""Control-plane scale-out benchmark: sharded vs single path service.

Standalone (not a pytest bench -- CI runs it directly):

    PYTHONPATH=src python benchmarks/bench_pathshard.py [--smoke]

PR 6 turns the controller's serving layer into per-pod shards
(``repro.core.pathshard``), each with its own SSSP trees, path-graph
LRU and replicated topology store.  This bench pins the three claims
that make that a scale-out and not just a refactor:

* **byte identity** -- every intra-pod shard answer equals the single
  global PathService's fresh build for the same key (same stable
  tie-breaker seed => same tags on the wire);
* **aggregate throughput** -- shards are independent controller
  processes, so the offered load completes when the *slowest* shard
  finishes its slice: aggregate warm queries/sec is
  ``total / max(per-shard wall)``, and must be >= 5x the single
  service serving the identical mix (the single-thread sum model is
  reported alongside for honesty);
* **independent failover** -- a planned ``failover()`` (non-crashing
  step-down) followed by a real ``fail_primary()`` on the *same* shard
  still elects a leader (the quorum no longer leaks a node per planned
  hand-off), and other shards never notice.

An open-loop host-join + path-query storm
(``repro.workloads.path_query_storm``) then drives the router the way
a busy fabric would -- pod-local and cross-pod queries interleaved
with replicated ``host-up`` commits -- checking every shard's replica
views converge with zero dropped records.

Results land in ``BENCH_pathshard.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import itertools
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.pathservice import PathService
from repro.core.pathshard import ShardedPathService
from repro.topology.fattree import fat_tree
from repro.workloads.storm import path_query_storm

from _util import REPO_ROOT, publish_json

SEED = 11
S_PARAM = 2
EPSILON = 1
CAPACITY = 2048
#: The acceptance floor: 8 pod shards must serve the warm intra-pod
#: mix at >= 5x the single global service's aggregate rate.
SPEEDUP_FLOOR = 5.0


def intra_pod_pairs(svc: ShardedPathService, per_pod: int, rng: random.Random):
    """Ordered same-pod switch pairs, ``per_pod`` per pod (0 = all)."""
    by_pod = {}
    for pod in svc.pod_map.pods:
        pairs = list(itertools.permutations(sorted(svc.pod_map.members(pod)), 2))
        if per_pod and per_pod < len(pairs):
            pairs = rng.sample(pairs, per_pod)
        by_pod[pod] = pairs
    return by_pod


def _best_wall(fn, reps: int = 3) -> float:
    """Best-of-N wall clock: rejects scheduler jitter on short loops."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_throughput(view, svc, flat, pairs_by_pod, rounds: int) -> dict:
    all_pairs = [p for pairs in pairs_by_pod.values() for p in pairs]

    # Byte identity + prewarm: the shard answer IS the single-service
    # answer (flat's first touch is a fresh build with the same
    # deterministic per-key rng).
    for pod, pairs in pairs_by_pod.items():
        for src, dst in pairs:
            got = svc.path_graph(src, dst, S_PARAM, EPSILON)
            want = flat.path_graph(view, src, dst, S_PARAM, EPSILON)
            assert got == want, (
                f"shard answer for ({src}, {dst}) diverged from the "
                "single-service build"
            )
    assert svc.global_queries == 0, "intra-pod query leaked to global tier"

    # Warm single service: the whole mix, several rounds.
    def serve_single():
        for _ in range(rounds):
            for src, dst in all_pairs:
                flat.path_graph(view, src, dst, S_PARAM, EPSILON)

    single_wall = _best_wall(serve_single)

    # Warm shards: each serves only its pod's slice.  Shards model
    # independent controller processes, so the aggregate rate is bound
    # by the slowest shard (parallel completion of the offered load).
    def serve_shard(shard, pairs):
        for _ in range(rounds):
            for src, dst in pairs:
                shard.path_graph(src, dst, S_PARAM, EPSILON)

    shard_walls = {
        pod: _best_wall(lambda: serve_shard(svc.shards[pod], pairs))
        for pod, pairs in pairs_by_pod.items()
    }

    total = len(all_pairs) * rounds
    slowest = max(shard_walls.values())
    single_qps = total / single_wall
    aggregate_qps = total / slowest
    return {
        "shards": len(pairs_by_pod),
        "queries_per_round": len(all_pairs),
        "rounds": rounds,
        "single_warm_qps": round(single_qps, 0),
        "sharded_aggregate_warm_qps": round(aggregate_qps, 0),
        "aggregate_speedup": round(aggregate_qps / single_qps, 2),
        "single_thread_sum_speedup": round(
            single_wall / sum(shard_walls.values()), 2
        ),
        "slowest_shard_wall_s": round(slowest, 4),
        "byte_identical_answers": len(all_pairs),
    }


def bench_storm(view, svc, smoke: bool) -> dict:
    """Open-loop query + host-join storm through the shard router."""
    events = path_query_storm(
        view,
        svc.pod_map.pod_of,
        duration_s=0.2,
        query_rate_per_s=2000.0 if smoke else 10000.0,
        join_rate_per_s=100.0 if smoke else 250.0,
        locality=0.8,
        seed=SEED + 1,
    )
    queries = joins = 0
    t0 = time.perf_counter()
    for event in events:
        if event.kind == "query":
            svc.path_graph(event.args[0], event.args[1], S_PARAM, EPSILON)
            queries += 1
        else:
            svc.note_topology_change("host-up", event.args)
            joins += 1
    wall = time.perf_counter() - t0

    # Every join was a quorum commit on its pod's shard: all replica
    # views must have converged, with zero dropped records.
    drops = 0
    for shard in svc.shards.values():
        leader_view = shard.view
        for name in shard.replica_names:
            assert shard.store.view_of(name).same_wiring(leader_view), (
                f"replica {name} diverged from its shard primary"
            )
        drops += shard.store.total_drops()
    assert drops == 0, f"{drops} committed records dropped by replicas"

    return {
        "events": len(events),
        "queries": queries,
        "host_joins": joins,
        "events_per_s": round(len(events) / wall, 0),
        "replica_drops": drops,
    }


def bench_failover(view, svc, flat, pairs_by_pod) -> dict:
    """Planned failover then a crash on the SAME shard: the quorum must
    survive both (the step-down no longer burns a node), and the other
    shards must be untouched."""
    pods = sorted(svc.shards)
    victim = svc.shards[pods[0]]
    bystanders = {pod: svc.shards[pod].primary for pod in pods[1:]}

    replicas = victim.alive_replicas()
    first = victim.primary
    stepped = victim.failover()  # planned: non-crashing step-down
    assert stepped is not None and stepped != first, "step-down failed"
    assert victim.alive_replicas() == replicas, (
        "planned failover shrank the quorum (step-down crashed a node)"
    )
    crashed = victim.fail_primary()  # real crash on the same shard
    assert crashed is not None and crashed != stepped, (
        "no leader after failover + fail_primary: quorum leaked"
    )
    assert victim.alive_replicas() == replicas - 1

    # The shard keeps serving, still byte-identical (its serving view
    # moved to the new primary's replica; the cache re-warms).
    src, dst = pairs_by_pod[pods[0]][0]
    got = victim.path_graph(src, dst, S_PARAM, EPSILON)
    want = flat.path_graph(view, src, dst, S_PARAM, EPSILON)
    assert got == want, "post-failover shard answer diverged"

    # Other shards never noticed.
    for pod, leader in bystanders.items():
        assert svc.shards[pod].primary == leader, (
            f"shard {pod} changed leader during another shard's failover"
        )
        assert svc.shards[pod].alive_replicas() == replicas

    return {
        "planned_then_crash_ok": True,
        "leaders": [first, stepped, crashed],
        "alive_replicas_after": victim.alive_replicas(),
        "bystander_shards_untouched": len(bystanders),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: fat-tree(8) with 1 host/edge and a lighter mix",
    )
    opts = parser.parse_args(argv)

    # The acceptance topology either way: fat-tree(8) = 8 pod shards.
    # Smoke trims hosts and the query mix, not the shard count.
    view = fat_tree(8, hosts_per_edge=1 if opts.smoke else 2)
    flat = PathService(capacity=CAPACITY, seed=SEED)
    svc = ShardedPathService(view, seed=SEED, capacity=CAPACITY)
    rng = random.Random(SEED)
    pairs_by_pod = intra_pod_pairs(svc, 0, rng)
    rounds = 100 if opts.smoke else 200

    payload = {
        "schema": "bench-pathshard/1",
        "mode": "smoke" if opts.smoke else "full",
        "topology": "fat_tree_8",
        "switches": len(view.switches),
        "pods": len(svc.pod_map.pods),
        "replicas_per_shard": svc.n_replicas,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    payload["throughput"] = bench_throughput(view, svc, flat, pairs_by_pod, rounds)
    print(f"[throughput] {payload['throughput']}")
    payload["storm"] = bench_storm(view, svc, opts.smoke)
    print(f"[storm] {payload['storm']}")
    payload["failover"] = bench_failover(view, svc, flat, pairs_by_pod)
    print(f"[failover] {payload['failover']}")
    payload["shard_report"] = svc.report()

    publish_json(
        "bench_pathshard", payload,
        path=os.path.join(REPO_ROOT, "BENCH_pathshard.json"),
    )

    speedup = payload["throughput"]["aggregate_speedup"]
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: sharded aggregate warm throughput only {speedup}x "
              f"the single service (floor {SPEEDUP_FLOOR}x)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
