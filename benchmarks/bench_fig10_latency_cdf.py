"""Figure 10: round-trip latency distribution.

Paper: CDF of RTTs for 100 packets between every host pair on the
testbed.  Native Ethernet is clearly fastest; no-op DPDK (their KNI
path) sits several times higher; DumbNet tracks no-op DPDK except for a
~0.5% tail at 20-30 ms caused by first-packet path queries, because all
pairs start pinging simultaneously and their controller queries pile up
("which resembles the worst case tail latency distribution").

Composition here: the emulator supplies the wire + queueing component
-- including the *real* cold-start controller-query storm that creates
DumbNet's tail -- and the calibrated stack model supplies the per-stack
software latency.  Native and no-op DPDK don't query a controller, so
their wire component is drawn from the warm-path samples.
"""

import random

import pytest

from repro.analysis import fraction_above, percentile, render_table
from repro.core.fabric import DumbNetFabric
from repro.hardware import DUMBNET, NATIVE, NOOP_DPDK
from repro.topology import paper_testbed
from repro.workloads import measure_rtts

from _util import publish

PACKETS_PER_PAIR = 30
#: Inter-ping gap.  Long enough that only each pair's first packet is a
#: cold start; the ~700 simultaneous first packets then hit the
#: controller together, which is exactly the paper's worst-case tail.
PING_GAP_S = 40e-3
#: Controller query service time (parse + path-graph + reply).  A real
#: server answers a path query in tens of microseconds; 700 concurrent
#: queries serialized at this rate produce the 20-30 ms queueing tail.
QUERY_SERVICE_S = 50e-6


def run_emulated_pings():
    from repro.core.controller import ControllerConfig

    fabric = DumbNetFabric(
        paper_testbed(),
        controller_host="h0_0",
        seed=10,
        controller_config=ControllerConfig(proc_delay_s=QUERY_SERVICE_S),
    )
    fabric.bootstrap()
    hosts = [h for h in fabric.topology.hosts if h != "h0_0"]
    pairs = [(a, b) for a in hosts for b in hosts if a != b]
    # All pairs start at the same time: the paper's worst-case setup.
    return measure_rtts(
        fabric,
        pairs=pairs,
        packets_per_pair=PACKETS_PER_PAIR,
        gap_s=PING_GAP_S,
        stagger_s=0.0,
    )


def test_fig10_latency_cdf(benchmark):
    samples = benchmark.pedantic(run_emulated_pings, rounds=1, iterations=1)
    assert samples
    warm_wire = [s.rtt_s for s in samples if not s.cold_start]
    all_wire = [s.rtt_s for s in samples]
    assert warm_wire

    rng = random.Random(77)
    series = {}
    # Native and no-op DPDK never talk to a controller: their wire
    # component is the warm-path distribution.
    for stack in (NATIVE, NOOP_DPDK):
        series[stack.name] = [
            stack.rtt_s(rng, wire_rtt_s=warm_wire[i % len(warm_wire)])
            for i in range(len(all_wire))
        ]
    # DumbNet keeps every measured wire RTT, cold-start storms included.
    series["DumbNet"] = [
        DUMBNET.rtt_s(rng, wire_rtt_s=wire) for wire in all_wire
    ]

    rows = []
    for name, values in series.items():
        ms = [v * 1e3 for v in values]
        rows.append(
            (
                name,
                f"{percentile(ms, 50):.2f}",
                f"{percentile(ms, 90):.2f}",
                f"{percentile(ms, 99):.2f}",
                f"{max(ms):.2f}",
                f"{100 * fraction_above(ms, 20.0):.2f}%",
            )
        )
    cold_fraction = 1 - len(warm_wire) / len(all_wire)
    text = render_table(
        ["Stack", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)", ">20ms"],
        rows,
        title=(
            "Figure 10: RTT distribution, all-pairs x "
            f"{PACKETS_PER_PAIR} packets, simultaneous start "
            f"({100 * cold_fraction:.1f}% cold starts).\n"
            "Paper: native << DPDK ~= DumbNet; ~0.5% DumbNet tail at 20-30 ms."
        ),
    )
    publish("fig10_latency_cdf", text)

    native = [v * 1e3 for v in series["Native"]]
    dpdk = [v * 1e3 for v in series["No-op DPDK"]]
    dumbnet = [v * 1e3 for v in series["DumbNet"]]
    # Native is clearly fastest.
    assert percentile(native, 50) < percentile(dpdk, 50) / 2
    # DumbNet's median tracks no-op DPDK (tag overhead is negligible).
    assert percentile(dumbnet, 50) == pytest.approx(
        percentile(dpdk, 50), rel=0.2
    )
    # The cold-start tail: a small fraction (paper: ~0.5%) of DumbNet
    # RTTs lands in the tens of milliseconds, driven by the concurrent
    # first-packet query storm; no-op DPDK has no such mass.
    tail = fraction_above(dumbnet, 20.0)
    assert 0.001 < tail < 0.05
    assert fraction_above(dpdk, 20.0) < tail / 2
    assert max(dumbnet) > 20.0
