"""Controller path-service benchmarks: cold vs warm serving, failure
storms, gossip-overlay rebuilds.

Standalone (not a pytest bench -- CI runs it directly):

    PYTHONPATH=src python benchmarks/bench_controller_paths.py [--smoke]

PR 2 made the emulator fast enough that the control plane became the
hot path: every PathRequest used to run ``build_path_graph`` from
scratch.  This bench measures what the PathService buys, per topology:

* **cold** -- first-touch queries through the service (one shared SSSP
  tree per source, then the path-graph build),
* **warm** -- the same queries again (pure LRU cache hits),
* **uncached** -- the pre-PathService serving path, re-measured live
  (fresh ``build_path_graph`` per query, no shared trees),
* **failure storm** -- link-down invalidations, asserting each one
  evicts exactly the cached entries whose edges contain the failed
  cable, and timing the re-serve of just the evicted keys,
* **overlay** -- ``compute_gossip_overlay`` cold vs warm (the rebuild
  reuses the service's SSSP trees).

Every cached answer is asserted byte-identical to a fresh
``build_path_graph`` run with the same deterministic tie-breaker rng.
Results land in ``BENCH_controller.json`` at the repo root alongside
the pre-optimization baseline so the speedup column is self-contained.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.controller import Controller
from repro.core.pathgraph import build_path_graph
from repro.core.pathservice import link_cache_key
from repro.netsim.events import EventLoop
from repro.topology import cube
from repro.topology.fattree import fat_tree

from _util import REPO_ROOT, publish_json

#: Pre-optimization numbers, measured at the parent commit of this
#: branch on the same machine/interpreter CI uses: microseconds per
#: PathRequest served the old way (a fresh ``build_path_graph`` per
#: query, seeded rng, same query mix as below).
BASELINE = {
    "commit": "dd1ebf2",
    "cold_us_per_query": {"fat_tree_8": 1474.0, "cube_10x10x10": 33760.0},
    "overlay_rebuild_s": {"fat_tree_8": 0.095},
}

SEED = 7
WARM_ROUNDS = 5

S_PARAM = 2
EPSILON = 1


def make_controller(topo) -> Controller:
    """A bootstrapped-view controller with no live fabric behind it --
    the bench drives the serving layer directly."""
    ctl = Controller(
        sorted(topo.hosts)[0], EventLoop(), rng=random.Random(SEED)
    )
    ctl.adopt_view(topo.copy())
    return ctl


def sample_pairs(view, n_pairs: int, rng: random.Random):
    """Distinct ordered switch pairs, the bench's query mix."""
    switches = sorted(view.switches)
    pairs = []
    seen = set()
    while len(pairs) < n_pairs:
        src, dst = rng.sample(switches, 2)
        if (src, dst) not in seen:
            seen.add((src, dst))
            pairs.append((src, dst))
    return pairs


def bench_topology(name: str, topo, n_pairs: int) -> dict:
    ctl = make_controller(topo)
    service = ctl.path_service
    view = ctl.view
    pairs = sample_pairs(view, n_pairs, random.Random(SEED))

    # Uncached reference: the pre-PathService serving path, re-measured
    # live.  Same deterministic rng per key, so its answers double as
    # the byte-identity oracle for the cached ones below.
    t0 = time.perf_counter()
    reference = [
        build_path_graph(
            view, src, dst, s=S_PARAM, epsilon=EPSILON,
            rng=service.rng_for(src, dst, S_PARAM, EPSILON),
        )
        for src, dst in pairs
    ]
    uncached_wall = time.perf_counter() - t0

    # Cold: first touch through the service (shared trees amortize the
    # per-source Dijkstra across queries and detour windows).
    t0 = time.perf_counter()
    cold = [
        service.path_graph(view, src, dst, S_PARAM, EPSILON)
        for src, dst in pairs
    ]
    cold_wall = time.perf_counter() - t0
    assert service.stats.misses == len(pairs)

    # Byte-identity: the cached answer IS the uncached answer.
    for got, want in zip(cold, reference):
        assert got == want, "cached path graph diverged from fresh build"

    # Warm: the same query mix again, several rounds.
    t0 = time.perf_counter()
    for _ in range(WARM_ROUNDS):
        for src, dst in pairs:
            service.path_graph(view, src, dst, S_PARAM, EPSILON)
    warm_wall = time.perf_counter() - t0
    assert service.stats.hits >= WARM_ROUNDS * len(pairs)

    uncached_us = uncached_wall / len(pairs) * 1e6
    cold_us = cold_wall / len(pairs) * 1e6
    warm_us = warm_wall / (WARM_ROUNDS * len(pairs)) * 1e6
    baseline_us = BASELINE["cold_us_per_query"].get(name)
    result = {
        "topology": name,
        "switches": len(view.switches),
        "queries": len(pairs),
        "uncached_us_per_query": round(uncached_us, 1),
        "cold_us_per_query": round(cold_us, 1),
        "warm_us_per_query": round(warm_us, 2),
        "cold_speedup_vs_uncached": round(uncached_us / cold_us, 2),
        "warm_speedup_vs_uncached": round(uncached_us / warm_us, 1),
        "baseline_cold_us_per_query": baseline_us,
        "warm_speedup_vs_baseline": (
            round(baseline_us / warm_us, 1) if baseline_us else None
        ),
        "stats": service.stats.as_dict(),
    }
    result["failure_storm"] = bench_failure_storm(ctl, pairs)
    return result


def bench_failure_storm(ctl: Controller, pairs) -> dict:
    """Fail switch-to-switch cables one by one, checking that each
    invalidation evicts exactly the entries whose edges contain the
    cable, then time re-serving just the evicted keys."""
    service = ctl.path_service
    view = ctl.view
    rng = random.Random(SEED + 1)
    links = sorted(
        (l.a.switch, l.a.port, l.b.switch, l.b.port) for l in view.links
    )
    storm = rng.sample(links, min(16, len(links)))

    evicted_total = 0
    invalidate_wall = 0.0
    for sw_a, port_a, sw_b, port_b in storm:
        lk = link_cache_key(sw_a, port_a, sw_b, port_b)
        affected = {
            key
            for key in service.cached_keys()
            if lk in service._links_of.get(key, ())
        }
        survivors = set(service.cached_keys()) - affected
        view.remove_link(sw_a, port_a, sw_b, port_b)
        t0 = time.perf_counter()
        evicted = service.invalidate_link(view, sw_a, port_a, sw_b, port_b)
        invalidate_wall += time.perf_counter() - t0
        assert evicted == len(affected), (
            f"link ({sw_a},{port_a})-({sw_b},{port_b}) evicted {evicted} "
            f"entries, expected exactly the {len(affected)} whose edges "
            "contain it"
        )
        assert survivors == set(service.cached_keys()), (
            "unaffected cache entries did not survive the invalidation"
        )
        evicted_total += evicted

    # Re-serve the whole mix on the degraded view: survivors hit, the
    # evicted keys rebuild, and every answer must match a fresh build.
    hits_before = service.stats.hits
    t0 = time.perf_counter()
    reserved = [
        service.path_graph(view, src, dst, S_PARAM, EPSILON)
        for src, dst in pairs
    ]
    reserve_wall = time.perf_counter() - t0
    sample = random.Random(SEED + 2).sample(range(len(pairs)), min(10, len(pairs)))
    for i in sample:
        src, dst = pairs[i]
        assert reserved[i] == build_path_graph(
            view, src, dst, s=S_PARAM, epsilon=EPSILON,
            rng=service.rng_for(src, dst, S_PARAM, EPSILON),
        ), "post-storm cached answer diverged from fresh build"

    return {
        "links_failed": len(storm),
        "entries_evicted": evicted_total,
        "cache_hits_on_reserve": service.stats.hits - hits_before,
        "invalidate_us_per_link": round(invalidate_wall / len(storm) * 1e6, 1),
        "reserve_us_per_query": round(reserve_wall / len(pairs) * 1e6, 1),
    }


def bench_overlay(name: str, topo) -> dict:
    """Gossip-overlay rebuild: cold (trees built on demand) vs warm
    (every per-pair Dijkstra replaced by a memoized tree walk)."""
    ctl = make_controller(topo)
    t0 = time.perf_counter()
    ctl.compute_gossip_overlay()
    cold_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    ctl.compute_gossip_overlay()
    warm_wall = time.perf_counter() - t0
    baseline_s = BASELINE["overlay_rebuild_s"].get(name)
    return {
        "topology": name,
        "hosts": len(ctl.view.hosts),
        "cold_s": round(cold_wall, 4),
        "warm_s": round(warm_wall, 4),
        "baseline_s": baseline_s,
        "warm_speedup_vs_baseline": (
            round(baseline_s / warm_wall, 1) if baseline_s else None
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: fat-tree(4) and a 5x5x5 cube instead of the "
             "paper-scale topologies",
    )
    opts = parser.parse_args(argv)

    if opts.smoke:
        topologies = [
            ("fat_tree_4", fat_tree(4), 60),
            ("cube_5x5x5", cube([5, 5, 5], hosts_per_switch=1, num_ports=8), 40),
        ]
        overlay_topo = ("fat_tree_4", fat_tree(4))
    else:
        topologies = [
            ("fat_tree_8", fat_tree(8), 200),
            ("cube_10x10x10", cube([10, 10, 10], hosts_per_switch=1, num_ports=8), 60),
        ]
        overlay_topo = ("fat_tree_8", fat_tree(8))

    payload = {
        "schema": "bench-controller/1",
        "mode": "smoke" if opts.smoke else "full",
        "baseline": BASELINE,
        "topologies": [],
    }
    for name, topo, n_pairs in topologies:
        point = bench_topology(name, topo, n_pairs)
        print(f"[{name}] {point}")
        payload["topologies"].append(point)
    payload["overlay"] = bench_overlay(*overlay_topo)
    print(f"[overlay] {payload['overlay']}")

    publish_json(
        "bench_controller", payload,
        path=os.path.join(REPO_ROOT, "BENCH_controller.json"),
    )

    failed = False
    for point in payload["topologies"]:
        # The acceptance floor: warm serving at least 5x faster than
        # cold, against the embedded baseline when this topology has
        # one and the live uncached measurement either way.
        if point["warm_speedup_vs_uncached"] < 5.0:
            print(f"FAIL: {point['topology']} warm path only "
                  f"{point['warm_speedup_vs_uncached']}x over live uncached")
            failed = True
        vs_baseline = point["warm_speedup_vs_baseline"]
        if vs_baseline is not None and vs_baseline < 5.0:
            print(f"FAIL: {point['topology']} warm path only "
                  f"{vs_baseline}x over the recorded cold baseline")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
