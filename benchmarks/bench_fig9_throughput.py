"""Figure 9 + the aggregate-throughput experiment of Section 7.2.2.

Paper numbers:

* single host: no-op DPDK 5.41 Gbps, "MPLS only" 5.19 Gbps, DumbNet
  5.19 Gbps (source routing adds only negligible overhead);
* aggregate: two leaf switches with 14 hosts each, 2x10 GE uplinks:
  "the measured aggregated throughput reaches 18.5 Gbps" out of 20 --
  wire speed through the MPLS dataplane with both paths utilized.

The single-host numbers come from the calibrated host-stack cost model
(DESIGN.md substitution: a Python per-packet dataplane cannot be timed
meaningfully); the aggregate number runs the fluid simulator over the
testbed topology with DumbNet's k-path load balancing.
"""

import os
import sys

if __name__ == "__main__":  # standalone CLI: repo src + sibling _util
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    sys.path.insert(0, os.path.dirname(__file__))

import pytest

from repro.analysis import render_table
from repro.hardware import DUMBNET, MPLS_ONLY, NOOP_DPDK
from repro.topology import leaf_spine
from repro.workloads import FixedPairs, Scenario, run_scenario

from _util import publish


def single_host_rows():
    return [
        ("No-op DPDK", 5.41, NOOP_DPDK.throughput_bps() / 1e9),
        ("MPLS Only", 5.19, MPLS_ONLY.throughput_bps() / 1e9),
        ("DumbNet", 5.19, DUMBNET.throughput_bps() / 1e9),
    ]


def aggregate_leaf_throughput(engine="fluid", roi=None):
    """14 hosts per leaf, 2 spines, 10 GE everywhere; all hosts on
    leaf0 blast a peer on leaf1.  Uplink capacity caps the total at
    20 Gbps; per-host stacks cap each sender at the DumbNet rate.

    One :func:`repro.workloads.run_scenario` call: the fixed-pair
    matrix under flowlet TE (k=2, the testbed's two uplinks) at the
    requested fidelity.  ``goodput_bps`` is exactly the old
    ``total_bits / completion_time`` headline.
    """
    scenario = Scenario(
        FixedPairs(
            [(f"h0_{i}", f"h1_{i}") for i in range(14)],
            size_bits=1e9,
            tag="agg",
        ),
        te="flowlet",
        engine=engine,
        topology=lambda: leaf_spine(
            spines=2, leaves=2, hosts_per_leaf=14, num_ports=64
        ),
        te_kwargs={"k": 2},
        link_bps=10e9,
        host_bps=DUMBNET.throughput_bps(),
        roi=roi,
    )
    return run_scenario(scenario).result.goodput_bps


def test_fig9_throughput(benchmark):
    aggregate_bps = benchmark.pedantic(
        aggregate_leaf_throughput, rounds=1, iterations=1
    )
    rows = [
        (name, f"{paper:.2f}", f"{ours:.2f}")
        for name, paper, ours in single_host_rows()
    ]
    text = render_table(
        ["Stack", "Paper (Gbps)", "Model (Gbps)"],
        rows,
        title="Figure 9: single-host throughput",
    )
    text += (
        "\n\nAggregate leaf-to-leaf throughput (14 hosts/leaf, 2x10GE "
        f"uplinks):\n  paper 18.5 / 20 Gbps, measured {aggregate_bps / 1e9:.1f} Gbps"
    )
    publish("fig9_throughput", text)

    ours = {name: measured for name, _p, measured in single_host_rows()}
    # Exact calibration on the anchor; structural equalities elsewhere.
    assert ours["No-op DPDK"] == pytest.approx(5.41, abs=0.01)
    assert ours["MPLS Only"] == pytest.approx(5.19, abs=0.02)
    assert ours["DumbNet"] == pytest.approx(ours["MPLS Only"], rel=0.01)
    # Aggregate: both uplinks utilized -> well above one uplink's 10G,
    # close to the 20G ceiling (paper: 18.5).
    assert 16e9 < aggregate_bps <= 20e9


def main(argv=None) -> int:
    import argparse
    import time

    from repro.hybrid import RegionOfInterest

    parser = argparse.ArgumentParser(
        description="Figure 9 aggregate leaf-to-leaf throughput"
    )
    parser.add_argument(
        "--engine", choices=("packet", "fluid", "hybrid"), default="fluid",
        help="dataplane fidelity (packet = everything promoted)",
    )
    parser.add_argument(
        "--roi-host", action="append", default=None, metavar="HOST",
        help="hybrid: promote flows touching HOST (repeatable; "
        "default h1_0)",
    )
    opts = parser.parse_args(argv)
    roi = None
    if opts.engine == "hybrid":
        roi = RegionOfInterest.of_hosts(*(opts.roi_host or ["h1_0"]))
    t0 = time.perf_counter()
    aggregate_bps = aggregate_leaf_throughput(opts.engine, roi)
    wall = time.perf_counter() - t0
    print(
        f"[{opts.engine}] aggregate {aggregate_bps / 1e9:.2f} Gbps "
        f"(paper 18.5 / 20), wall {wall:.2f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
