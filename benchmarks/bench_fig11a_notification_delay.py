"""Figure 11(a): CDF of topology-change notification delays.

Paper: after a link failure on the testbed, "the majority of hosts
receive the link failure notification within 4 milliseconds, and
receive the patch message within 8 milliseconds; the entire process
finishes within 10 milliseconds."  The link-failure message (stage 1)
always precedes the topology patch (stage 2) because stage 1 never
waits for the controller.

This bench injects a spine-leaf link failure on the emulated testbed
and reads both per-host delay distributions off the trace.
"""

import pytest

from repro.analysis import percentile, render_table
from repro.core.fabric import DumbNetFabric
from repro.topology import paper_testbed

from _util import publish


def run_failure():
    fabric = DumbNetFabric(paper_testbed(), controller_host="h0_0", seed=23)
    fabric.adopt_blueprint()
    fabric.tracer.clear()
    start = fabric.now
    fabric.fail_link("leaf2", 1, "spine0", 3)
    fabric.run_until_idle()
    news = {
        host: t - start
        for host, t in fabric.tracer.first_time_per_node("news-received").items()
    }
    patch = {
        host: t - start
        for host, t in fabric.tracer.first_time_per_node("patch-received").items()
    }
    return fabric.topology.hosts, news, patch


def test_fig11a_notification_delay(benchmark):
    hosts, news, patch = benchmark.pedantic(run_failure, rounds=1, iterations=1)

    news_ms = [v * 1e3 for v in news.values()]
    patch_ms = [v * 1e3 for v in patch.values()]
    rows = []
    for name, values in (("Link Failure Msg", news_ms), ("Topology Patch Msg", patch_ms)):
        rows.append(
            (
                name,
                len(values),
                f"{percentile(values, 50):.2f}",
                f"{percentile(values, 90):.2f}",
                f"{max(values):.2f}",
            )
        )
    text = render_table(
        ["Message", "Hosts", "p50 (ms)", "p90 (ms)", "max (ms)"],
        rows,
        title=(
            "Figure 11(a): notification delay after a link failure.\n"
            "Paper: majority get failure msg < 4 ms, patch < 8 ms, all < 10 ms."
        ),
    )
    publish("fig11a_notification_delay", text)

    # Every host hears stage 1; every non-controller host gets stage 2.
    assert set(hosts) <= set(news)
    assert set(hosts) - {"h0_0"} <= set(patch)
    # Stage ordering per host.
    for host in patch:
        if host in news:
            assert news[host] <= patch[host] + 1e-9
    # Magnitudes: single-digit milliseconds end to end.
    assert max(news_ms) < 10
    assert max(patch_ms) < 12
    # Stage 2 lags stage 1 (controller processing sits in between).
    assert percentile(patch_ms, 50) > percentile(news_ms, 50)
