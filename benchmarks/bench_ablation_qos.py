"""Ablation: priority queueing for control traffic (Section 3.1).

The paper keeps multi-queue/priority as a hardware feature that "will
not change the stateless and configuration-free nature" of the switch.
This ablation shows what it buys the failure protocol: under heavy data
congestion, stage-1 failure notifications on plain FIFO switches queue
behind data frames, while on priority-queueing switches they overtake
everything.

Setup: the testbed at 200 Mbps links, every leaf0 host blasting
cross-fabric traffic, then a far-side link fails.  Metric: worst-case
stage-1 notification delay across hosts.
"""

import pytest

from repro.analysis import render_table
from repro.core.fabric import DumbNetFabric
from repro.core.qos import QosSwitch
from repro.core.switch import DumbSwitch
from repro.netsim import LinkSpec
from repro.topology import paper_testbed

from _util import publish

LINK_BPS = 100e6
BLAST_PACKETS = 100


def stage1_delay(switch_cls):
    spec = LinkSpec(bandwidth_bps=LINK_BPS, latency_s=5e-6)
    fabric = DumbNetFabric(
        paper_testbed(), controller_host="h0_0", seed=6,
        link_spec=spec, host_link_spec=spec, switch_cls=switch_cls,
    )
    fabric.adopt_blueprint()
    # Incast onto two victim downlinks: the switch egress ports toward
    # h1_0 and h2_0 build deep queues (a host NIC alone cannot congest
    # a switch port -- it feeds at line rate).
    pairs = [(f"h0_{i}", f"h{1 + (i % 2)}_0") for i in range(5)]
    fabric.warm_paths(pairs)
    # Saturate the fabric: everyone blasts at once, then the cut lands
    # while queues are deep.
    for src, dst in pairs:
        for i in range(BLAST_PACKETS):
            fabric.loop.schedule(
                0.0, fabric.agents[src].send_app, dst,
                ("blast", src, i), 1450, (src, dst),
            )
    fabric.tracer.clear()
    # Cut once the victim downlink queues are deep (the 5-into-1 incast
    # feeds ~5x faster than the port drains).
    fail_delay = 0.02
    fail_at = fabric.now + fail_delay
    fabric.loop.schedule(fail_delay, fabric.fail_link, "leaf4", 1, "spine0", 5)
    fabric.run_until_idle()
    news = fabric.tracer.first_time_per_node("news-received")
    if not news:
        return float("inf")
    return max(t - fail_at for t in news.values())


def test_ablation_qos_notification_priority(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "FIFO (DumbSwitch)": stage1_delay(DumbSwitch),
            "Priority (QosSwitch)": stage1_delay(QosSwitch),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (name, f"{delay * 1e3:.2f}")
        for name, delay in results.items()
    ]
    text = render_table(
        ["Egress discipline", "Worst stage-1 delay under load (ms)"],
        rows,
        title=(
            "Ablation (Section 3.1): failure-notification latency under "
            f"congestion, {LINK_BPS / 1e6:.0f} Mbps links, testbed."
        ),
    )
    publish("ablation_qos", text)

    fifo = results["FIFO (DumbSwitch)"]
    qos = results["Priority (QosSwitch)"]
    assert qos < fifo  # priority strictly helps under load
    assert fifo != float("inf") and qos != float("inf")
