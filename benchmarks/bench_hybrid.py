"""Hybrid-fidelity dataplane benchmark: equal headline numbers, a
fraction of the wall time.

Standalone (not a pytest bench -- CI runs it directly):

    PYTHONPATH=src python benchmarks/bench_hybrid.py [--smoke]

Two paper-class experiments run on three engines built from the same
machinery (``repro.hybrid.build_engine``):

* **fluid**  -- pure max-min flow simulation,
* **hybrid** -- fluid bulk + a packet-level region of interest,
* **packet** -- the pure packet-fidelity baseline: the *same*
  netsim-channel frame pipeline the hybrid zoom uses, with every flow
  promoted.  Measuring the speedup against the same frame machinery
  keeps the comparison honest -- the hybrid gain is exactly "how much
  traffic stayed fluid", not an artifact of two unrelated simulators.

Experiments:

* **fig9-class** -- 28 hosts per leaf blast a peer across 2x10GE
  uplinks; headline = aggregate throughput; ROI = the flow into host
  h1_0 (1 of 28 promoted).  The >=20x wall-time floor applies here and
  is enforced in full mode.
* **fig13-class** -- HiBench Terasort shuffle on the paper testbed
  (spine ports 500 Mbps); headline = task duration; ROI = flows
  touching the first server.  Promoted volume is a larger fraction and
  the fluid epochs dominate both sides, so the enforced floor is the
  smaller FIG13_REQUIRED_SPEEDUP (the 20x criterion is the fig9-class
  run).

Correctness gates run in every mode:

* headline numbers equal across engines within pinned tolerances,
* fluid engine == hybrid engine with an **empty** ROI, exactly
  (per-flow finish times compared bit-for-bit).

Results land in ``BENCH_hybrid.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.flowsim import FlowNet, RebalancingKPathPolicy
from repro.hardware import DUMBNET
from repro.hybrid import RegionOfInterest, build_engine
from repro.topology import leaf_spine, paper_testbed
from repro.workloads import HiBenchWorkload, replay_program

from _util import REPO_ROOT, publish_json

#: fig9-class wall-time floor (full mode): hybrid must beat the pure
#: packet baseline by this factor at equal headline numbers.
FIG9_REQUIRED_SPEEDUP = 20.0
#: fig9-class headline tolerance (relative): aggregate Gbps across
#: engines.
FIG9_TOLERANCE = 0.05

#: fig13-class floor: promoted volume is ~1/14 of the shuffle and the
#: max-min epochs dominate both sides, so parity of headline numbers is
#: the point and the wall floor is modest (measured ~3.3x).
FIG13_REQUIRED_SPEEDUP = 2.5
FIG13_TOLERANCE = 0.06

FIG9_FULL = {"hosts_per_leaf": 28, "flow_bits": 1e9}
FIG9_SMOKE = {"hosts_per_leaf": 6, "flow_bits": 5e7}

FIG13_FULL = {"task": "Terasort", "scale": 0.5, "epoch_s": 5e-3}
FIG13_SMOKE = {"task": "Terasort", "scale": 0.05, "epoch_s": 5e-3}

SPINE_PORT_BPS = 500e6


# ----------------------------------------------------------------------
# fig9-class: aggregate leaf-to-leaf throughput


def fig9_run(scenario: dict, engine: str, roi=None) -> dict:
    n = scenario["hosts_per_leaf"]
    topo = leaf_spine(spines=2, leaves=2, hosts_per_leaf=n, num_ports=64)
    net = FlowNet(topo, link_bps=10e9, host_bps=DUMBNET.throughput_bps())
    sim = build_engine(
        topo, engine, roi=roi, policy=RebalancingKPathPolicy(k=2), net=net
    )
    total_bits = 0.0
    for i in range(n):
        sim.add_flow(f"h0_{i}", f"h1_{i}", scenario["flow_bits"], tag="agg")
        total_bits += scenario["flow_bits"]
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    row = {
        "engine": engine,
        "aggregate_gbps": round(total_bits / sim.completion_time("agg") / 1e9, 4),
        "wall_s": round(wall, 3),
        "finish_times": [f.finished_at for f in sim.flows],
        "report": sim.report().as_dict(),
    }
    return row


# ----------------------------------------------------------------------
# fig13-class: HiBench Terasort shuffle duration


def fig13_run(scenario: dict, engine: str, roi=None) -> dict:
    topo = paper_testbed()
    net = FlowNet(
        topo,
        link_bps=10e9,
        host_bps=10e9,
        switch_overrides={"spine0": SPINE_PORT_BPS, "spine1": SPINE_PORT_BPS},
    )
    kwargs = {}
    if engine != "fluid":
        kwargs["epoch_s"] = scenario["epoch_s"]
    sim = build_engine(
        topo, engine, roi=roi, policy=RebalancingKPathPolicy(k=4), net=net,
        rebalance_interval_s=0.05, **kwargs,
    )
    # Plain int seed: the legacy hibench_task derivation hashes a string
    # (process-salted), which made this gate flap between CI runs.
    workload = HiBenchWorkload(scenario["task"], scale=scenario["scale"])
    program = workload.program(topo, rng=random.Random(11))
    t0 = time.perf_counter()
    duration = replay_program(sim, program).duration_s
    wall = time.perf_counter() - t0
    return {
        "engine": engine,
        "duration_s": round(duration, 6),
        "wall_s": round(wall, 3),
        "report": sim.report().as_dict(),
    }


# ----------------------------------------------------------------------


def rel_diff(a: float, b: float) -> float:
    return abs(a - b) / b if b else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: tiny scenarios, correctness gates only",
    )
    opts = parser.parse_args(argv)

    fig9 = FIG9_SMOKE if opts.smoke else FIG9_FULL
    fig13 = FIG13_SMOKE if opts.smoke else FIG13_FULL
    failures = []

    # fig9-class: fluid / hybrid(1 of N promoted) / packet(all promoted)
    fig9_fluid = fig9_run(fig9, "fluid")
    print(f"[fig9 fluid]   {fig9_fluid['aggregate_gbps']} Gbps "
          f"wall {fig9_fluid['wall_s']}s")
    fig9_hybrid = fig9_run(fig9, "hybrid", RegionOfInterest.of_hosts("h1_0"))
    print(f"[fig9 hybrid]  {fig9_hybrid['aggregate_gbps']} Gbps "
          f"wall {fig9_hybrid['wall_s']}s")
    fig9_packet = fig9_run(fig9, "packet")
    print(f"[fig9 packet]  {fig9_packet['aggregate_gbps']} Gbps "
          f"wall {fig9_packet['wall_s']}s")
    fig9_speedup = (
        fig9_packet["wall_s"] / fig9_hybrid["wall_s"]
        if fig9_hybrid["wall_s"] else float("inf")
    )
    print(f"[fig9] speedup {fig9_speedup:.1f}x "
          f"(floor {FIG9_REQUIRED_SPEEDUP}x, "
          f"{'enforced' if not opts.smoke else 'smoke: recorded only'})")

    for name, row in (("hybrid", fig9_hybrid), ("packet", fig9_packet)):
        diff = rel_diff(row["aggregate_gbps"], fig9_fluid["aggregate_gbps"])
        if diff > FIG9_TOLERANCE:
            failures.append(
                f"fig9 {name} headline {row['aggregate_gbps']} Gbps is "
                f"{diff:.3f} rel from fluid (tolerance {FIG9_TOLERANCE})"
            )
    if not opts.smoke and fig9_speedup < FIG9_REQUIRED_SPEEDUP:
        failures.append(
            f"fig9 hybrid speedup {fig9_speedup:.1f}x below the "
            f"{FIG9_REQUIRED_SPEEDUP}x floor"
        )

    # Boundary-exactness gate: empty ROI must equal pure fluid, exactly.
    empty_roi = fig9_run(fig9, "hybrid", RegionOfInterest.empty())
    exact = empty_roi["finish_times"] == fig9_fluid["finish_times"]
    print(f"[fig9] fluid == hybrid(empty ROI): {'exact' if exact else 'DIVERGED'}")
    if not exact:
        failures.append("hybrid with empty ROI diverged from the fluid engine")

    # fig13-class: Terasort shuffle
    fig13_fluid = fig13_run(fig13, "fluid")
    print(f"[fig13 fluid]  {fig13_fluid['duration_s']}s "
          f"wall {fig13_fluid['wall_s']}s")
    roi13 = RegionOfInterest.of_hosts(paper_testbed().hosts[0])
    fig13_hybrid = fig13_run(fig13, "hybrid", roi13)
    print(f"[fig13 hybrid] {fig13_hybrid['duration_s']}s "
          f"wall {fig13_hybrid['wall_s']}s")
    fig13_packet = fig13_run(fig13, "packet")
    print(f"[fig13 packet] {fig13_packet['duration_s']}s "
          f"wall {fig13_packet['wall_s']}s")
    fig13_speedup = (
        fig13_packet["wall_s"] / fig13_hybrid["wall_s"]
        if fig13_hybrid["wall_s"] else float("inf")
    )
    print(f"[fig13] speedup {fig13_speedup:.1f}x "
          f"(floor {FIG13_REQUIRED_SPEEDUP}x, "
          f"{'enforced' if not opts.smoke else 'smoke: recorded only'})")

    for name, row in (("hybrid", fig13_hybrid), ("packet", fig13_packet)):
        diff = rel_diff(row["duration_s"], fig13_fluid["duration_s"])
        if diff > FIG13_TOLERANCE:
            failures.append(
                f"fig13 {name} duration {row['duration_s']}s is "
                f"{diff:.3f} rel from fluid (tolerance {FIG13_TOLERANCE})"
            )
    if not opts.smoke and fig13_speedup < FIG13_REQUIRED_SPEEDUP:
        failures.append(
            f"fig13 hybrid speedup {fig13_speedup:.1f}x below the "
            f"{FIG13_REQUIRED_SPEEDUP}x floor"
        )

    def strip(row):
        out = dict(row)
        out.pop("finish_times", None)
        return out

    payload = {
        "schema": "bench-hybrid/1",
        "mode": "smoke" if opts.smoke else "full",
        "fig9": {
            "scenario": fig9,
            "roi": "of_hosts(h1_0)",
            "fluid": strip(fig9_fluid),
            "hybrid": strip(fig9_hybrid),
            "packet": strip(fig9_packet),
            "speedup": round(fig9_speedup, 2),
            "headline_tolerance": FIG9_TOLERANCE,
            "empty_roi_exact": exact,
            "floor": {
                "required_speedup": FIG9_REQUIRED_SPEEDUP,
                "enforced": not opts.smoke,
                "reason": (
                    "enforced: full-size scenario"
                    if not opts.smoke else
                    "not enforced: smoke mode checks correctness only"
                ),
            },
        },
        "fig13": {
            "scenario": fig13,
            "roi": f"of_hosts({paper_testbed().hosts[0]})",
            "fluid": strip(fig13_fluid),
            "hybrid": strip(fig13_hybrid),
            "packet": strip(fig13_packet),
            "speedup": round(fig13_speedup, 2),
            "headline_tolerance": FIG13_TOLERANCE,
            "floor": {
                "required_speedup": FIG13_REQUIRED_SPEEDUP,
                "enforced": not opts.smoke,
                "reason": (
                    "enforced: full-size scenario; the 20x criterion is "
                    "the fig9-class run (promoted fraction is larger "
                    "here and max-min epochs dominate both sides)"
                    if not opts.smoke else
                    "not enforced: smoke mode checks correctness only"
                ),
            },
        },
    }
    publish_json(
        "bench_hybrid", payload,
        path=os.path.join(REPO_ROOT, "BENCH_hybrid.json"),
    )

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
