"""Table 2: latency of the kernel-module functions.

Paper setup: "a fat-tree topology with 5,120 switches and 131,072
links.  To measure PathTable lookup time, we inserted 10K random
entries into the Table.  The path length we verify is 16...  We run
each test 1,000 times and take the average."

Paper numbers: PathTable lookup 0.37 us, Path verify 7.17 us,
Find path 1.50 us (C++ on a 2.1 GHz Xeon).  Python is slower in
absolute terms; the reproduced claims are the *relationships*: all
three operations are microsecond-scale (far below a packet time
budget), lookup is the cheapest, and verify costs linearly in path
length, making it the most expensive of the three.
"""

import random

import pytest

from repro.analysis import render_table
from repro.core.pathcache import CachedPath, PathTable
from repro.core.verifier import PathVerifier
from repro.topology import fat_tree

from _util import publish

RESULTS = {}


@pytest.fixture(scope="module")
def setup():
    """The paper's measurement rig: k=64 fat-tree = 5,120 switches and
    131,072 links, 10K random PathTable entries, a 16-hop verify path."""
    topo = fat_tree(64, hosts_per_edge=1)
    assert len(topo.switches) == 5120
    assert len(topo.links) == 131072

    rng = random.Random(42)
    table = PathTable(rng=rng)
    hosts = topo.hosts
    # 10K random entries.  Fat-tree shortest paths have the fixed shape
    # edge-agg-core-agg-edge, so entries are built structurally (one
    # Dijkstra each at this scale would dominate setup for no benefit:
    # lookup cost depends only on table occupancy).
    switch_names = topo.switches
    for i in range(10_000):
        path = rng.sample(switch_names, 5)
        tags = tuple(rng.randrange(1, 65) for _ in range(5))
        table.install(f"dst{i}", [CachedPath.from_encoding(path, tags)])

    # A 16-hop path for verification ("longer than most DCN paths"):
    # walk valid hops in the real topology.
    src_host = hosts[0]
    switches = [topo.host_port(src_host).switch]
    rng16 = random.Random(7)
    while len(switches) < 16:
        nxt = [
            n for n in topo.neighbors(switches[-1])
            if len(switches) < 2 or n != switches[-2]
        ]
        switches.append(rng16.choice(nxt))
    # End the path at a host on the final switch; fat_tree hosts sit on
    # edge switches only, so walk until we can close on one.
    while not topo.hosts_on(switches[-1]):
        switches.append(rng16.choice(topo.neighbors(switches[-1])))
    dst_host = topo.hosts_on(switches[-1])[0]
    tags = topo.encode_path(src_host, switches, dst_host)
    verify_path = CachedPath.from_encoding(switches, tags)
    verifier = PathVerifier(topo)
    assert verifier.verify(src_host, dst_host, verify_path)

    yield topo, table, verifier, (src_host, dst_host, verify_path)

    # Teardown: render the paper table from whatever benchmarks ran.
    if len(RESULTS) == 3:
        paper = {
            "PathTable lookup": 0.37e-6,
            "Path verify (16 hops)": 7.17e-6,
            "Find path": 1.50e-6,
        }
        rows = [
            (name, f"{paper[name] * 1e6:.2f}", f"{RESULTS[name] * 1e6:.2f}")
            for name in paper
        ]
        text = render_table(
            ["Function", "Paper (us, C++)", "Measured (us, Python)"],
            rows,
            title="Table 2: kernel-module function latency "
            "(fat-tree: 5,120 switches / 131,072 links; 10K PathTable entries)",
        )
        publish("table2_kernel_functions", text)


def test_pathtable_lookup(benchmark, setup):
    _topo, table, _verifier, _vp = setup
    rng = random.Random(3)
    keys = [f"dst{rng.randrange(10_000)}" for _ in range(64)]

    def lookup_batch():
        for key in keys:
            table.lookup(key, flow_key="flow")

    benchmark(lookup_batch)
    per_op = benchmark.stats.stats.mean / len(keys)
    RESULTS["PathTable lookup"] = per_op


def test_path_verify_16_hops(benchmark, setup):
    _topo, _table, verifier, (src, dst, path) = setup
    assert len(path.switches) >= 16

    def verify():
        assert verifier.verify(src, dst, path)

    benchmark(verify)
    RESULTS["Path verify (16 hops)"] = benchmark.stats.stats.mean


def test_find_path(benchmark, setup):
    """"Find path": choose among the k cached candidates for a flow --
    the hot-path routing decision the agent makes per new flowlet."""
    _topo, table, _verifier, _vp = setup
    rng = random.Random(5)
    keys = [f"dst{rng.randrange(10_000)}" for _ in range(64)]

    def find_batch():
        for i, key in enumerate(keys):
            table.lookup(key, flow_key=("new-flow", i))

    benchmark(find_batch)
    RESULTS["Find path"] = benchmark.stats.stats.mean / len(keys)


