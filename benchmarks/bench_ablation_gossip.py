"""Ablation: gossip route redundancy (Section 4.2 stage 1/2 plumbing).

The failure flood's own routes can cross the failed link.  With one
route per gossip edge, a single link failure can cut the very overlay
that must report it, and stage-2 patches stop reaching part of the
fabric.  With two link-disjoint routes per edge, the flood survives any
single failure.

This ablation cuts every spine-leaf link of the testbed in turn and
measures how many hosts the stage-2 topology patch reaches under
redundancy 1 vs redundancy 2.  (Stage 1 is immune either way: the
switch broadcast does not use the overlay.)
"""

import pytest

from repro.analysis import render_table
from repro.core.controller import ControllerConfig
from repro.core.fabric import DumbNetFabric
from repro.topology import paper_testbed

from _util import publish


def patch_coverage(redundancy: int):
    """Mean/min fraction of hosts patched, over every spine-leaf cut."""
    fractions = []
    base_topo = paper_testbed()
    cuts = [
        (link.a.switch, link.a.port, link.b.switch, link.b.port)
        for link in base_topo.links
    ]
    for cut in cuts:
        fabric = DumbNetFabric(
            paper_testbed(),
            controller_host="h0_0",
            seed=17,
            controller_config=ControllerConfig(
                gossip_route_redundancy=redundancy
            ),
        )
        fabric.adopt_blueprint()
        fabric.tracer.clear()
        fabric.fail_link(*cut)
        fabric.run_until_idle()
        patched = set(fabric.tracer.first_time_per_node("patch-received"))
        others = set(fabric.topology.hosts) - {"h0_0"}
        fractions.append(len(patched & others) / len(others))
    return sum(fractions) / len(fractions), min(fractions)


def test_ablation_gossip_redundancy(benchmark):
    results = benchmark.pedantic(
        lambda: {r: patch_coverage(r) for r in (1, 2)}, rounds=1, iterations=1
    )
    rows = [
        (
            f"{redundancy} route(s)/edge",
            f"{100 * mean:.1f}%",
            f"{100 * worst:.1f}%",
        )
        for redundancy, (mean, worst) in results.items()
    ]
    text = render_table(
        ["Gossip redundancy", "Mean patch coverage", "Worst-case coverage"],
        rows,
        title=(
            "Ablation: stage-2 patch coverage over every single "
            "spine-leaf cut on the testbed."
        ),
    )
    publish("ablation_gossip", text)

    mean1, worst1 = results[1]
    mean2, worst2 = results[2]
    # Two disjoint routes give full coverage under any single failure.
    assert worst2 > 0.999
    # One route measurably loses hosts on some cuts.
    assert worst1 < worst2
