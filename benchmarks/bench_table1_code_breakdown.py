"""Table 1: code breakdown by module.

Paper (C/C++ lines): Agent 5000, Discovery 600, Maintenance 200,
Graph 1700, Total 7500, +Flowlet 100, +Router 100.

We count this repository's Python lines for the corresponding
components.  The claim being reproduced is the *shape*: the agent
dominates, discovery/maintenance/graph are each far smaller, and the
two extensions are tiny add-ons relative to the core ("their
implementations are both easy", Section 6).
"""

import os

from repro.analysis import render_table

from _util import publish

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")

#: Paper component -> (paper C/C++ lines, our module files).
#: Agent = the host dataplane + path cache service; Maintenance = the
#: failure-notification/patch protocol; Graph = path-graph generation
#: and the controller's topology bookkeeping.
BREAKDOWN = {
    "Agent": (
        5000,
        ["core/host_agent.py", "core/pathcache.py", "core/packet.py",
         "core/verifier.py", "core/fabric.py"],
    ),
    "Discovery": (600, ["core/discovery.py"]),
    "Maintenance": (200, ["core/messages.py"]),
    "Graph": (1700, ["core/pathgraph.py", "core/controller.py"]),
    "+Flowlet": (100, ["core/flowlet.py"]),
    "+Router": (100, ["core/l3router.py"]),
}


def count_lines(rel_paths):
    total = 0
    for rel in rel_paths:
        path = os.path.join(SRC, rel)
        if not os.path.exists(path):
            continue
        with open(path) as handle:
            total += sum(1 for _line in handle)
    return total


def collect_breakdown():
    rows = []
    core_total_paper = 0
    core_total_ours = 0
    for component, (paper_lines, files) in BREAKDOWN.items():
        ours = count_lines(files)
        rows.append((component, paper_lines, ours))
        if not component.startswith("+"):
            core_total_paper += paper_lines
            core_total_ours += ours
    return rows, core_total_paper, core_total_ours


def test_table1_code_breakdown(benchmark):
    rows, paper_core, our_core = benchmark(collect_breakdown)
    table_rows = [
        (name, paper, ours) for name, paper, ours in rows
    ]
    table_rows.append(("Core total", paper_core, our_core))
    text = render_table(
        ["Component", "Paper (C/C++ lines)", "This repo (Python lines)"],
        table_rows,
        title="Table 1: code breakdown by module",
    )
    publish("table1_code_breakdown", text)

    by_name = {name: ours for name, _p, ours in rows}
    # Shape assertions: the agent dominates the core; extensions are
    # an order of magnitude smaller than the agent.
    assert by_name["Agent"] == max(
        v for k, v in by_name.items() if not k.startswith("+")
    )
    assert by_name["+Flowlet"] < by_name["Agent"] / 4
    assert by_name["+Router"] < by_name["Agent"] / 4
