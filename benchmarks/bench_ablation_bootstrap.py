"""Ablation: full discovery vs the verification bootstrap (Section 4.1).

"With some prior knowledge about the topology, during bootstrapping the
hosts can quickly verify (instead of discover) all links, and thus make
the bootstrapping process faster while still maintain the tolerance to
mis-configurations."

This ablation measures the gap: probes and modeled time for full BFS
discovery vs blueprint verification, across fabric sizes, plus the
mis-wiring detection capability (verification must flag a removed
link, at verification cost, not discovery cost).
"""

import pytest

from repro.analysis import render_table
from repro.core.discovery import (
    OracleProbeTransport,
    discover,
    verify_expected_topology,
)
from repro.topology import fat_tree

from _util import publish

ARITIES = (4, 6, 8)


def run_comparison():
    rows = []
    for k in ARITIES:
        topo = fat_tree(k, hosts_per_edge=1, num_ports=32)
        origin = topo.hosts[0]

        full = OracleProbeTransport(topo, origin)
        result = discover(full, origin)
        assert result.view.same_wiring(topo)

        quick = OracleProbeTransport(topo, origin)
        report = verify_expected_topology(quick, origin, topo)
        assert report.clean

        rows.append(
            (
                len(topo.switches),
                full.probes_sent,
                f"{full.elapsed():.2f}",
                quick.probes_sent,
                f"{quick.elapsed():.4f}",
                f"{full.probes_sent / quick.probes_sent:.0f}x",
            )
        )
    return rows


def run_miswire_detection():
    topo = fat_tree(4, hosts_per_edge=1, num_ports=32)
    blueprint = topo.copy()
    victim = topo.links[3]
    topo.remove_link(
        victim.a.switch, victim.a.port, victim.b.switch, victim.b.port
    )
    transport = OracleProbeTransport(topo, topo.hosts[0])
    report = verify_expected_topology(transport, topo.hosts[0], blueprint)
    return victim, report


def test_ablation_bootstrap(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = render_table(
        [
            "Switches",
            "Discovery probes",
            "Disc. time (s)",
            "Verify probes",
            "Verify time (s)",
            "Savings",
        ],
        rows,
        title=(
            "Ablation (Section 4.1): full BFS discovery vs "
            "prior-knowledge verification bootstrap (32-port fat-trees)."
        ),
    )
    victim, report = run_miswire_detection()
    text += (
        f"\n\nMis-wiring detection: removed {victim}; verification "
        f"reported missing links {report.missing_links} with "
        f"{report.stats.probes_sent} probes."
    )
    publish("ablation_bootstrap", text)

    # Verification is at least an order of magnitude cheaper everywhere.
    for _sw, disc_probes, _dt, verify_probes, _vt, _factor in rows:
        assert verify_probes * 10 < disc_probes
    # And it still catches the mis-wiring.
    assert not report.clean
    key = (victim.a.switch, victim.a.port, victim.b.switch, victim.b.port)
    rkey = (victim.b.switch, victim.b.port, victim.a.switch, victim.a.port)
    assert key in report.missing_links or rkey in report.missing_links
