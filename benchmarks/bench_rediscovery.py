"""Incremental rediscovery vs full re-discovery (Section 4.2).

Standalone (not a pytest bench -- CI runs it directly):

    PYTHONPATH=src python benchmarks/bench_rediscovery.py [--smoke]

The scenario is the paper's expansion case: a discovered fat-tree gets
one brand-new switch racked in, cabled to a handful of free ports.
Before this PR the controller's only complete answer was a full
O(N * P^2) ``discover()`` of the whole fabric; the incremental engine
(:mod:`repro.core.rediscovery`) BFS-expands from just the dirty
frontier ports instead.

Measured per topology, on the oracle transport (exact message counts,
modeled per-message cost -- the same accounting Figure 8 uses):

* **full** -- probes and modeled time for a fresh ``discover()`` of
  the post-join fabric,
* **incremental** -- probes and modeled time for expanding the
  pre-join view from the ports that got new cables,
* **ratio** -- full/incremental probe counts; the acceptance floor is
  >= 10x for a single-switch join on fat-tree(8),
* **equivalence** -- the expanded view must be ``same_wiring`` with a
  fresh full discovery (asserted, not reported).

Results land in ``BENCH_rediscovery.json`` at the repo root alongside
the other CI bench artifacts.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.discovery import OracleProbeTransport, discover
from repro.core.rediscovery import incremental_discover
from repro.topology.fattree import fat_tree

from _util import REPO_ROOT, publish_json

#: Acceptance floor: incremental must beat full by at least this factor
#: on the single-switch-join scenario (ISSUE 5 acceptance criteria).
MIN_PROBE_RATIO = 10.0

#: Cables from the new switch into the fabric per join.
JOIN_CABLES = 4


def _free_ports(topo, limit):
    """(switch, port) pairs with nothing plugged in, spread over
    distinct switches first."""
    free = []
    taken_switches = set()
    for sw in topo.switches:
        for p in range(1, topo.num_ports(sw) + 1):
            if topo.peer(sw, p) is None and sw not in taken_switches:
                free.append((sw, p))
                taken_switches.add(sw)
                break
        if len(free) >= limit:
            return free
    for sw in topo.switches:
        for p in range(1, topo.num_ports(sw) + 1):
            if topo.peer(sw, p) is None and (sw, p) not in free:
                free.append((sw, p))
                if len(free) >= limit:
                    return free
    return free


def run_case(label: str, k: int, num_ports: int) -> dict:
    truth = fat_tree(k, num_ports=num_ports)
    origin = truth.hosts[0]

    # Bootstrap: one full discovery of the pre-join fabric.
    boot = discover(OracleProbeTransport(truth, origin=origin), origin)
    assert boot.view.same_wiring(truth)

    # The join: one new switch, JOIN_CABLES cables into free ports.
    truth_joined = truth.copy()
    new_switch = "joined0"
    truth_joined.add_switch(new_switch, num_ports)
    frontiers = _free_ports(truth, JOIN_CABLES)
    assert len(frontiers) == JOIN_CABLES, (
        f"{label}: need {JOIN_CABLES} free ports, found {len(frontiers)} "
        f"(raise num_ports)"
    )
    for i, (sw, p) in enumerate(frontiers, start=1):
        truth_joined.add_link(sw, p, new_switch, i)

    # Full re-discovery of the post-join fabric (the old answer).
    full_transport = OracleProbeTransport(truth_joined, origin=origin)
    full = discover(full_transport, origin)
    assert full.view.same_wiring(truth_joined)

    # Incremental expansion from exactly the newly cabled ports.
    inc_transport = OracleProbeTransport(truth_joined, origin=origin)
    view = boot.view.copy()
    inc = incremental_discover(inc_transport, origin, view, frontiers)

    assert inc.view.same_wiring(full.view), (
        f"{label}: incremental view diverged from full discovery"
    )
    assert inc.switches_added == [new_switch]

    ratio = full.stats.probes_sent / max(1, inc.stats.probes_sent)
    return {
        "topology": label,
        "switches": len(truth_joined.switches),
        "links": len(truth_joined.links),
        "join_cables": JOIN_CABLES,
        "full_probes": full.stats.probes_sent,
        "full_elapsed_s": full.stats.elapsed_s,
        "incremental_probes": inc.stats.probes_sent,
        "incremental_rounds": inc.stats.rounds,
        "incremental_elapsed_s": inc.stats.elapsed_s,
        "incremental_changes": len(inc.changes),
        "max_frontier_depth": inc.max_frontier_depth,
        "probe_ratio": round(ratio, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small topology + floor check only (CI mode)",
    )
    args = parser.parse_args(argv)

    # num_ports exceeds k so the fabric has free ports to cable the
    # newcomer into (a default fat-tree is fully wired).
    if args.smoke:
        cases = [("fat_tree_4", 4, 6)]
    else:
        cases = [("fat_tree_4", 4, 6), ("fat_tree_8", 8, 10)]

    rows = [run_case(label, k, ports) for label, k, ports in cases]
    payload = {
        "kind": "bench-rediscovery",
        "min_probe_ratio": MIN_PROBE_RATIO,
        "cases": rows,
    }
    publish_json(
        "bench_rediscovery",
        payload,
        path=os.path.join(REPO_ROOT, "BENCH_rediscovery.json"),
    )

    failed = False
    for row in rows:
        status = "ok" if row["probe_ratio"] >= MIN_PROBE_RATIO else "BELOW FLOOR"
        print(
            f"{row['topology']:>12}: full {row['full_probes']:>8} probes, "
            f"incremental {row['incremental_probes']:>5} probes "
            f"({row['incremental_rounds']} rounds, depth "
            f"{row['max_frontier_depth']}) -> {row['probe_ratio']:.1f}x "
            f"[{status}]"
        )
        if row["probe_ratio"] < MIN_PROBE_RATIO:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
