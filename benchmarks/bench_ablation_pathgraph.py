"""Ablation: what the path graph buys (Section 4.3 design choice).

The paper argues the path graph (k shortest paths + local detours + a
link-disjoint backup) is the right point between caching one path
(tiny, fragile) and caching the whole topology (robust, huge): "hosts
can use the local detours to quickly handle single link failures, and
the backup path is designed to provide an alternative when many links
on the primary path fail in a correlated way."

This ablation measures exactly that, on a sparse jellyfish fabric where
path diversity is scarce.  For each cached-route strategy we ask: after
a failure, can the host keep talking *from cache alone* (no controller
round trip)?

* single failures -- one link cut (every link in turn);
* correlated failures -- three simultaneous link cuts (sampled).

Strategies: ``single`` (one shortest path), ``k-paths`` (k=4, no
backup), ``pathgraph`` (k=4 + the disjoint backup).
"""

import random

import pytest

from repro.analysis import render_table
from repro.core.pathgraph import build_path_graph
from repro.topology import jellyfish

from _util import publish

K = 4
PAIRS = 10
CORRELATED_SCENARIOS = 300
CORRELATED_SIZE = 3


def run_ablation():
    topo = jellyfish(12, 3, seed=2)
    rng = random.Random(99)
    switches = topo.switches
    pairs = []
    while len(pairs) < PAIRS:
        a, b = rng.sample(switches, 2)
        if topo.switch_distances(a).get(b, 0) >= 3:
            pairs.append((a, b))

    def plinks(path):
        return frozenset(
            topo.links_between(x, y)[0].key() for x, y in zip(path, path[1:])
        )

    all_links = [link.key() for link in topo.links]
    frng = random.Random(5)
    single_scenarios = [frozenset((l,)) for l in all_links]
    correlated_scenarios = [
        frozenset(frng.sample(all_links, CORRELATED_SIZE))
        for _ in range(CORRELATED_SCENARIOS)
    ]

    names = ("single", "k-paths", "pathgraph")
    stats = {
        name: {"single": [0, 0], "correlated": [0, 0], "edges": 0}
        for name in names
    }
    for src, dst in pairs:
        k_paths = topo.k_shortest_switch_paths(src, dst, K)
        graph = build_path_graph(topo, src, dst, s=2, epsilon=1, rng=rng)
        cached = {
            "single": [plinks(k_paths[0])],
            "k-paths": [plinks(p) for p in k_paths],
            "pathgraph": [plinks(p) for p in k_paths]
            + ([plinks(list(graph.backup))] if graph.backup else []),
        }
        stats["single"]["edges"] += len(k_paths[0]) - 1
        stats["k-paths"]["edges"] += sum(len(p) - 1 for p in k_paths)
        stats["pathgraph"]["edges"] += graph.num_edges
        for kind, scenarios in (
            ("single", single_scenarios),
            ("correlated", correlated_scenarios),
        ):
            for dead in scenarios:
                for name in names:
                    stats[name][kind][1] += 1
                    if any(not (dead & links) for links in cached[name]):
                        stats[name][kind][0] += 1
    return stats


def test_ablation_pathgraph(benchmark):
    stats = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for name in ("single", "k-paths", "pathgraph"):
        s = stats[name]
        rows.append(
            (
                name,
                f"{100 * s['single'][0] / s['single'][1]:.1f}%",
                f"{100 * s['correlated'][0] / s['correlated'][1]:.1f}%",
                s["edges"] * 8,
            )
        )
    text = render_table(
        [
            "Cache strategy",
            "1-link failures survived",
            f"{CORRELATED_SIZE}-link failures survived",
            "Cached bytes",
        ],
        rows,
        title=(
            "Ablation (Section 4.3): cache-only survival on a sparse "
            "jellyfish fabric (12 switches, degree 3)."
        ),
    )
    publish("ablation_pathgraph", text)

    def rate(name, kind):
        won, total = stats[name][kind]
        return won / total

    # Single failures: one cached path is fragile; k paths fix it.
    assert rate("single", "single") < rate("k-paths", "single")
    # Correlated failures: the disjoint backup strictly helps on top of
    # k shortest paths (which share links on sparse fabrics).
    assert rate("k-paths", "correlated") < rate("pathgraph", "correlated")
    assert rate("single", "correlated") < rate("k-paths", "correlated")
