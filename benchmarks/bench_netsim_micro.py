"""netsim hot-path micro-benchmarks.

Standalone (not a pytest bench -- CI runs it directly):

    PYTHONPATH=src python benchmarks/bench_netsim_micro.py [--smoke]

Measures the layers the emulator spends its time in, bottom up:

* raw event-loop throughput (a self-rescheduling timer mesh),
* cancel-heavy throughput (the protocol-timer arm/disarm pattern) plus
  the lazy-deletion heap bound,
* channel frames/sec (transmit fast path + delivery + device service),
* Figure 8(a) end-to-end discovery wall-clock at 50/125/250/500
  switches (full mode; --smoke stops at 50),
* one seeded chaos-smoke run's wall-clock and event throughput.

Results land in ``BENCH_netsim.json`` at the repo root, alongside the
pre-optimization baseline captured on the same machine so the speedup
column is self-contained.  The golden-trace regression test
(tests/test_netsim.py) separately pins that the optimizations did not
change event interleavings.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.fabric import DumbNetFabric
from repro.core.packet import Packet
from repro.core.telemetry import StatsSwitch
from repro.faultinject.smoke import run_once
from repro.netsim import Channel, Device, EventLoop
from repro.topology import cube, leaf_spine

from _util import REPO_ROOT, publish_json

#: Pre-optimization numbers, measured at the seed commit of this branch
#: on the same machine/interpreter that CI uses for the smoke run.
#: Wall-clocks are Figure 8(a) bootstrap (cube, 64-port switches,
#: hosts_per_switch=1, seed=1); the loop executed an identical event
#: count before and after (interleavings are pinned by test).
BASELINE = {
    "commit": "640180d",
    "fig8a_wall_s": {"50": 6.152, "125": 17.808, "250": 42.874, "500": 104.496},
    "fig8a_events": {
        "50": 1783315, "125": 5135372, "250": 12861372, "500": 30903872,
    },
    "events_per_sec": 290000,
}

FIG8A_DIMS = {50: (5, 5, 2), 125: (5, 5, 5), 250: (5, 5, 10), 500: (10, 10, 5)}


# ----------------------------------------------------------------------
# event loop


def bench_eventloop(n_events: int, width: int = 1024) -> dict:
    """Self-rescheduling timers at a steady heap depth of ``width``."""
    loop = EventLoop()
    fired = 0
    stop_at = n_events - width

    def tick() -> None:
        nonlocal fired
        fired += 1
        if fired <= stop_at:
            loop.call_after(1e-6, tick)

    for i in range(width):
        loop.call_after(i * 1e-9, tick)
    t0 = time.perf_counter()
    loop.run()
    wall = time.perf_counter() - t0
    assert loop.pending == 0
    return {
        "events": loop.events_run,
        "wall_s": round(wall, 3),
        "events_per_sec": int(loop.events_run / wall),
    }


def bench_cancel_churn(n_cycles: int) -> dict:
    """Arm-then-disarm timers (the retry/timeout pattern) and report the
    heap bound lazy deletion maintains."""
    loop = EventLoop()
    cycles = 0
    peak_heap = 0

    def noop() -> None:  # pragma: no cover - cancelled before firing
        raise AssertionError("cancelled timer fired")

    def tick() -> None:
        nonlocal cycles, peak_heap
        cycles += 1
        handle = loop.schedule(1000.0, noop)  # far-future timeout...
        handle.cancel()                       # ...disarmed immediately
        if len(loop._heap) > peak_heap:
            peak_heap = len(loop._heap)
        if cycles < n_cycles:
            loop.call_after(1e-6, tick)

    loop.call_after(0.0, tick)
    t0 = time.perf_counter()
    loop.run()
    wall = time.perf_counter() - t0
    return {
        "cycles": n_cycles,
        "wall_s": round(wall, 3),
        "cycles_per_sec": int(n_cycles / wall),
        "peak_heap": peak_heap,
        "final_dead_entries": loop.dead_entries,
    }


# ----------------------------------------------------------------------
# channel


class _Sink(Device):
    def handle_packet(self, port: int, packet) -> None:
        pass


def bench_channel(n_frames: int) -> dict:
    """Blast frames one way over a 10 Gbps channel: transmit fast path,
    delivery event, and device service per frame."""
    loop = EventLoop()
    channel = Channel(loop, bandwidth_bps=10e9, latency_s=1e-6)
    sender = _Sink("tx", loop)
    receiver = _Sink("rx", loop)
    sender.attach(1, channel.ends[0])
    receiver.attach(1, channel.ends[1])
    frame = Packet(src="tx", payload_bytes=1450)
    t0 = time.perf_counter()
    for _ in range(n_frames):
        sender.send(1, frame)
    loop.run()
    wall = time.perf_counter() - t0
    assert receiver.packets_received == n_frames
    return {
        "frames": n_frames,
        "wall_s": round(wall, 3),
        "frames_per_sec": int(n_frames / wall),
        "events_per_sec": int(loop.events_run / wall),
    }


# ----------------------------------------------------------------------
# end-to-end


def bench_fig8a_point(n_switches: int) -> dict:
    dims = FIG8A_DIMS[n_switches]
    topo = cube(list(dims), hosts_per_switch=1, num_ports=64)
    assert len(topo.switches) == n_switches
    fabric = DumbNetFabric(topo, controller_host=topo.hosts[0], seed=1)
    t0 = time.perf_counter()
    result = fabric.bootstrap()
    wall = time.perf_counter() - t0
    events = fabric.loop.events_run
    baseline_wall = BASELINE["fig8a_wall_s"][str(n_switches)]
    assert events == BASELINE["fig8a_events"][str(n_switches)], (
        "event count drifted from baseline -- interleavings changed?"
    )
    return {
        "switches": n_switches,
        "dims": list(dims),
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_sec": int(events / wall),
        "modeled_s": round(result.stats.elapsed_s, 3),
        "probes": result.stats.probes_sent,
        "baseline_wall_s": baseline_wall,
        "speedup": round(baseline_wall / wall, 3),
    }


def bench_obs_snapshot(seed: int = 7) -> dict:
    """Run an obs-enabled fabric through traffic plus a link flap and
    persist the full ``fabric.observe()`` snapshot (CI uploads it as an
    artifact).  Returns timing plus headline sizes so the main payload
    records that the snapshot was non-trivial."""
    topo = leaf_spine(2, 3, 2, num_ports=16)
    fabric = DumbNetFabric.from_topology(
        topo,
        bootstrap="blueprint",
        warm=True,
        controller_host=sorted(topo.hosts)[0],
        seed=seed,
        switch_cls=StatsSwitch,
        obs=True,
    )
    link = sorted(topo.links, key=lambda l: str(l.key()))[0]
    fabric.fail_link(link)
    fabric.run_until_idle()
    fabric.restore_link(link)
    fabric.run_until_idle()
    t0 = time.perf_counter()
    observation = fabric.observe()
    snapshot_wall = time.perf_counter() - t0
    snapshot = observation.as_dict()
    path = publish_json("obs_snapshot", snapshot)
    metrics = snapshot["metrics"] or {}
    return {
        "seed": seed,
        "snapshot_wall_s": round(snapshot_wall, 6),
        "snapshot_path": os.path.relpath(path, REPO_ROOT),
        "metrics": len(metrics),
        "histograms": sum(
            1 for m in metrics.values() if m.get("type") == "histogram"
        ),
        "switches": len(snapshot["switches"]),
        "events_run": fabric.loop.events_run,
    }


def bench_chaos_smoke(seed: int = 42, n_faults: int = 22) -> dict:
    t0 = time.perf_counter()
    report = run_once(seed, n_faults, k=4)
    wall = time.perf_counter() - t0
    return {
        "seed": seed,
        "faults": n_faults,
        "wall_s": round(wall, 3),
        "events_run": report.events_run,
        "events_per_sec": int(report.events_run / wall),
        "ok": report.ok(),
        "timeline_digest": report.timeline_digest(),
    }


# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: smaller micro sizes, Figure 8(a) at 50 switches only",
    )
    opts = parser.parse_args(argv)

    scale = 10 if opts.smoke else 1
    sizes = (50,) if opts.smoke else (50, 125, 250, 500)

    payload = {
        "schema": "bench-netsim/1",
        "mode": "smoke" if opts.smoke else "full",
        "baseline": BASELINE,
        "eventloop": bench_eventloop(1_000_000 // scale),
        "cancel_churn": bench_cancel_churn(200_000 // scale),
        "channel": bench_channel(500_000 // scale),
        "fig8a": [],
    }
    for n_switches in sizes:
        point = bench_fig8a_point(n_switches)
        print(f"[fig8a] {point}")
        payload["fig8a"].append(point)
    payload["chaos_smoke"] = bench_chaos_smoke()
    payload["obs_snapshot"] = bench_obs_snapshot()

    for key in ("eventloop", "cancel_churn", "channel", "chaos_smoke",
                "obs_snapshot"):
        print(f"[{key}] {payload[key]}")
    publish_json(
        "bench_netsim", payload,
        path=os.path.join(REPO_ROOT, "BENCH_netsim.json"),
    )

    # The cancel-heavy heap must stay O(live): the chain keeps ~1 live
    # timer plus up to COMPACT_MIN_DEAD*2-ish dead ones between sweeps.
    if payload["cancel_churn"]["peak_heap"] > 4096:
        print("FAIL: cancelled entries accumulated in the heap")
        return 1
    smallest = payload["fig8a"][0]
    if smallest["speedup"] < 1.0:
        print(f"FAIL: fig8a {smallest['switches']}-switch point regressed "
              f"below the recorded baseline ({smallest['speedup']}x)")
        return 1
    if not payload["chaos_smoke"]["ok"]:
        print("FAIL: chaos smoke found violations")
        return 1
    if payload["obs_snapshot"]["histograms"] < 1:
        print("FAIL: obs snapshot carried no populated metrics")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
