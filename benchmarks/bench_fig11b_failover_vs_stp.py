"""Figure 11(b): throughput recovery after a link cut, DumbNet vs STP.

Paper setup: traffic between two hosts on different leaf switches at
0.5 Gbps (the link is saturated); at t=0 one of the two spine-leaf
links in use is cut.  DumbNet hosts fail over to a cached alternative
path as soon as the stage-1 notification lands; STP must age out the
stale root information and walk the replacement port through
listening/learning.  "The DumbNet approach is almost 4.7x faster than
STP."

Both sides run packet-by-packet in the same emulator: a constant-bit-
rate stream, a mid-stream link cut, and per-bin received-throughput
accounting.  The STP bridge runs classic 802.1D timers scaled down by
100x (hello 20 ms / max-age 200 ms / forward-delay 150 ms) -- the
paper's own STP trace recovers within ~250 ms, which standard 2/20/15 s
timers cannot do, so their deployment necessarily ran fast timers too.
"""

import pytest

from repro.analysis import render_series
from repro.baselines import L2Host, StpBridge
from repro.baselines.stp import L2Frame
from repro.core.fabric import DumbNetFabric
from repro.faultinject import ChaosFabric, ChaosRunner, FaultSchedule
from repro.netsim import LinkSpec, Network, Tracer
from repro.topology import paper_testbed
from repro.workloads import CbrStream

from _util import publish

RATE_BPS = 0.5e9
PACKET_BYTES = 1450
FAIL_AT_S = 0.3
RUN_FOR_S = 1.2
BIN_S = 0.02

#: Classic 802.1D timers scaled by 100x.
STP_TIMERS = dict(hello_s=0.02, max_age_s=0.2, forward_delay_s=0.15)

#: The paper's notifications came from "a script on Arista switch to
#: monitor the port state" -- a polling loop, not the PHY ("these
#: packets can be sent even faster if it's done by hardware").  Its
#: latency dominates the paper's ~50 ms DumbNet recovery; we model the
#: polling delay explicitly so the comparison is like-for-like.
NOTIFY_SCRIPT_DELAY_S = 0.045


def recovery_delay(arrival_times, fail_at):
    """The outage duration: the largest inter-arrival gap in the
    post-failure window (losses may begin a moment after the cut, when
    the in-flight queue drains, so "first arrival after fail_at" would
    under-measure)."""
    window = sorted(t for t in arrival_times if t >= fail_at - 0.01)
    if len(window) < 2:
        return float("inf")
    return max(b - a for a, b in zip(window, window[1:]))


def run_dumbnet():
    spec = LinkSpec(bandwidth_bps=RATE_BPS, latency_s=5e-6)
    fabric = DumbNetFabric(
        paper_testbed(), controller_host="h0_0", seed=3,
        link_spec=spec, host_link_spec=spec,
        notify_script_delay_s=NOTIFY_SCRIPT_DELAY_S,
    )
    fabric.adopt_blueprint()
    fabric.warm_paths([("h2_0", "h3_0")])
    src, dst = fabric.agents["h2_0"], fabric.agents["h3_0"]
    stream = CbrStream(src, dst, rate_bps=RATE_BPS, packet_bytes=PACKET_BYTES)
    stream.start()
    base = fabric.now

    def bound_link(chaos):
        # Resolve, at fire time, the link the stream's flow is bound
        # to right now: cutting a pre-picked link could miss the flow.
        entry = chaos.agents["h2_0"].path_table.entry("h3_0")
        index = entry.flow_bindings.get(stream.flow_key, 0)
        if not 0 <= index < len(entry.primaries):
            index = 0
        port = entry.primaries[index].tags[0]
        peer = chaos.topology.peer("leaf2", port)
        return ("leaf2", port, peer.switch, peer.port)

    schedule = FaultSchedule().link_down(FAIL_AT_S, bound_link)
    ChaosRunner(ChaosFabric.wrap(fabric), schedule).install()
    fabric.run(until=base + RUN_FOR_S)
    stream.stop()
    arrivals = [t - base for t, _b in stream.arrivals]
    bins = stream.throughput_bins(BIN_S, until=RUN_FOR_S, start=base)
    return recovery_delay(arrivals, FAIL_AT_S), bins, fabric.loop.events_run


class _L2Cbr:
    """Self-clocked CBR sender over the classic Ethernet fabric."""

    def __init__(self, net, src, dst):
        self.net = net
        self.src = net.hosts[src]
        self.dst_name = dst
        self.running = True
        self.interval = PACKET_BYTES * 8 / RATE_BPS

    def start(self):
        self._tick()

    def _tick(self):
        if not self.running:
            return
        self.src.send_frame(self.dst_name, payload="cbr", payload_bytes=PACKET_BYTES)
        self.net.loop.schedule(self.interval, self._tick)


def run_stp():
    tracer = Tracer()
    spec = LinkSpec(bandwidth_bps=RATE_BPS, latency_s=5e-6)

    def make_bridge(name, ports, network):
        return StpBridge(name, ports, network.loop, tracer=tracer, **STP_TIMERS)

    def make_host(name, network):
        return L2Host(name, network.loop, tracer=tracer)

    net = Network(
        paper_testbed(), make_bridge, make_host,
        link_spec=spec, host_link_spec=spec, tracer=tracer,
    )
    for bridge in net.switches.values():
        bridge.start()
    net.run(until=2.0)  # converge

    base = net.now
    sender = _L2Cbr(net, "h2_0", "h3_0")
    sender.start()

    def cut():
        # Cut the spine link the tree actually uses for leaf2 traffic:
        # leaf2's root port.
        leaf2 = net.switches["leaf2"]
        port = leaf2.root_port
        peer = net.topology.peer("leaf2", port)
        net.fail_link("leaf2", port, peer.switch, peer.port)

    net.loop.schedule(FAIL_AT_S, cut)
    net.run(until=base + RUN_FOR_S)
    sender.running = False
    dst = net.hosts["h3_0"]
    arrivals = [t - base for t, _s, p in dst.delivered if p == "cbr"]
    # Bin the received bytes.
    bins = []
    t = 0.0
    while t < RUN_FOR_S:
        hi = t + BIN_S
        got = sum(1 for a in arrivals if t <= a < hi) * PACKET_BYTES * 8
        bins.append((t, got / BIN_S))
        t = hi
    return recovery_delay(arrivals, FAIL_AT_S), bins, net.loop.events_run


def test_fig11b_failover_vs_stp(benchmark):
    (dumb_delay, dumb_bins, dumb_events), (stp_delay, stp_bins, stp_events) = (
        benchmark.pedantic(
            lambda: (run_dumbnet(), run_stp()), rounds=1, iterations=1
        )
    )
    ratio = stp_delay / dumb_delay
    text = (
        f"Figure 11(b): recovery from a spine-leaf cut at t={FAIL_AT_S}s, "
        f"{RATE_BPS / 1e9:.1f} Gbps CBR stream\n\n"
        f"DumbNet recovery gap : {dumb_delay * 1e3:8.2f} ms\n"
        f"STP recovery gap     : {stp_delay * 1e3:8.2f} ms\n"
        f"speedup              : {ratio:8.1f}x   (paper: ~4.7x)\n"
        f"simulator events     : {dumb_events} (DumbNet) / "
        f"{stp_events} (STP)\n\n"
    )
    text += render_series(
        "DumbNet throughput",
        [(t, bps / 1e6) for t, bps in dumb_bins],
        x_label="t (s)",
        y_label="Mbps",
    )
    text += "\n" + render_series(
        "STP throughput",
        [(t, bps / 1e6) for t, bps in stp_bins],
        x_label="t (s)",
        y_label="Mbps",
    )
    publish("fig11b_failover_vs_stp", text)

    # Both recover eventually.
    assert dumb_delay != float("inf") and stp_delay != float("inf")
    # DumbNet is several times faster (paper: 4.7x with the same
    # script-driven notification latency modeled here).
    assert 3.0 < ratio < 12.0
    # Both streams return to (near) full rate by the end of the run.
    assert dumb_bins[-2][1] > 0.8 * RATE_BPS
    assert stp_bins[-2][1] > 0.8 * RATE_BPS
