"""Figure 7: FPGA resource utilization vs number of ports.

Paper series: DumbNet LUT/register counts grow from ~1.7K/1.5K at 4
ports toward ~25-30K at 30+ ports; the 4-port NetFPGA OpenFlow
reference point is 16,070 LUTs / 17,193 registers ("we can dedicate
most of the chip area to the switching fabric... instead of lookup
tables and control logics").
"""

from repro.analysis import render_table
from repro.hardware import (
    DUMBNET_VERILOG_LINES,
    dumbnet_switch_resources,
    openflow_switch_resources,
    reduction_factor,
)

from _util import publish

PORT_SWEEP = (2, 4, 8, 16, 24, 32)


def sweep():
    rows = []
    for ports in PORT_SWEEP:
        dumb = dumbnet_switch_resources(ports)
        of = openflow_switch_resources(ports)
        rows.append(
            (
                ports,
                dumb.luts,
                dumb.registers,
                of.luts,
                of.registers,
                f"{reduction_factor(ports):.1f}x",
            )
        )
    return rows


def test_fig7_fpga_resources(benchmark):
    rows = benchmark(sweep)
    text = render_table(
        [
            "Ports",
            "DumbNet LUTs",
            "DumbNet regs",
            "OpenFlow LUTs",
            "OpenFlow regs",
            "Reduction",
        ],
        rows,
        title=(
            "Figure 7: FPGA resource model "
            f"(DumbNet switch is {DUMBNET_VERILOG_LINES} lines of Verilog)"
        ),
    )
    publish("fig7_fpga_resources", text)

    by_ports = {r[0]: r for r in rows}
    # The paper's calibration point is exact.
    assert by_ports[4][1] == 1713 and by_ports[4][2] == 1504
    assert by_ports[4][3] == 16070 and by_ports[4][4] == 17193
    # ~90% reduction at 4 ports.
    assert reduction_factor(4) > 9
    # Figure 7 scale: ~25-30K elements around 32 ports.
    assert 15_000 < by_ports[32][1] < 35_000
