"""Shared helpers for the benchmark harness.

Every bench prints the rows/series of its paper table/figure and also
writes them to ``benchmarks/results/<name>.txt`` so the numbers survive
pytest's output capture and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
