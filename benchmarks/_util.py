"""Shared helpers for the benchmark harness.

Every bench prints the rows/series of its paper table/figure and also
writes them to ``benchmarks/results/<name>.txt`` so the numbers survive
pytest's output capture and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def publish_json(name: str, payload: Dict[str, Any],
                 path: Optional[str] = None) -> str:
    """Persist a machine-readable result blob; returns the path written.

    Default location is ``benchmarks/results/<name>.json``; pass ``path``
    for blobs that live elsewhere (e.g. the repo-root BENCH_*.json files
    that CI checks for regressions).
    """
    if path is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[{name}] wrote {path}")
    return path
